"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``lattice``
    Regenerate the Figure 1 lattice on bounded universes and print the
    report (inclusion matrix, strict-edge witnesses, constructibility).
``figures``
    Print and verify the paper's Figures 2–4 and the store-buffer pair.
``run``
    Unfold a bundled program, schedule it with work stealing, execute it
    under a chosen memory, verify the trace, and optionally dump it as
    JSON for later re-checking.
``check``
    Load a JSON document (observer function, partial observer, or trace)
    and report which models admit it.
``lint``
    Static race analysis of a bundled program or a serialized
    computation: SP-bags determinacy races, lockset classification,
    text or JSON diagnostics.  Exits 0 when data-race free, 2 otherwise
    — built for CI.
``bench``
    Unified benchmark runner: discover the entrypoints registered in
    ``benchmarks/registry.py``, run each with warmup + repeats, and
    append one schema-validated record per benchmark to the JSONL
    performance ledger (``BENCH_LEDGER.jsonl``).  ``--compare`` gates
    the run against the ledger's history (exit 2 on a noise-adjusted
    wall-clock regression) — built for CI.
``obs``
    Post-hoc telemetry tooling: ``obs replay`` reconstructs a valid
    trace from a crash-safe ``--journal`` spool (even one torn by
    ``kill -9``, dangling spans closed as aborted), ``obs export``
    re-renders a trace or journal as Prometheus text, JSON, Chrome
    trace-events, or a human profile.

Every subcommand accepts ``--trace FILE`` (``--trace-format chrome``
produces a Chrome trace-event file that ui.perfetto.dev renders as
per-process tracks) and ``--mem`` (tracemalloc attribution on spans).
The same commands take the live telemetry flags: ``--journal FILE``
(crash-safe JSONL event spool), ``--live`` (per-worker TTY status
board), and ``--metrics-port PORT`` (Prometheus endpoint for the
duration of the command).

Examples::

    python -m repro lattice --sweep-nodes 3 --witness-nodes 4 --jobs 4 --stats
    python -m repro run --program fib --size 8 --procs 4 --memory backer
    python -m repro run --program racy --procs 4 --drop-reconcile 0.9 \\
        --out /tmp/bad_trace.json
    python -m repro check /tmp/bad_trace.json
    python -m repro lint racy --format json
    python -m repro lint /tmp/computation.json --engine closure
    python -m repro reproduce --jobs 2 --trace out.json --trace-format chrome
    python -m repro bench --quick --compare
    python -m repro reproduce --jobs 4 --journal sweep.jsonl --live
    python -m repro obs replay sweep.jsonl --format json --out recovered.json
    python -m repro obs export sweep.jsonl --format prom
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Sequence

from repro import obs
from repro.errors import ReproError

__all__ = ["main", "build_parser"]

#: ``bench --compare`` is tri-state: absent (no gate), bare flag (gate
#: against the ``--ledger`` file), or an explicit history file.
_NO_COMPARE = "\0no-compare"

PROGRAMS = {
    "fib": ("fib_computation", "size", 8),
    "matmul": ("matmul_computation", "blocks", 2),
    "scan": ("scan_computation", "n", 8),
    "stencil": ("stencil_computation", "width", 6),
    "tree-sum": ("tree_sum_computation", "n_leaves", 8),
    "racy": ("racy_counter_computation", "n_tasks", 4),
    "locked-counter": ("locked_counter_computation", "n_tasks", 4),
    "deadlock": ("deadlock_computation", None, None),
    "store-buffer": ("store_buffer_computation", None, None),
    "iriw": ("iriw_computation", None, None),
}


def _resolve_program(name: str, size: int | None):
    """Unfold a bundled program by CLI name → (comp, info)."""
    import repro.lang as lang

    if name not in PROGRAMS:
        raise ValueError(
            f"unknown program {name!r} (choose from "
            f"{', '.join(sorted(PROGRAMS))})"
        )
    fn_name, size_param, default = PROGRAMS[name]
    factory = getattr(lang, fn_name)
    if size_param is None:
        return factory()
    return factory(size if size is not None else default)


def _add_obs_args(
    sp: argparse.ArgumentParser, profile_flag: bool = True
) -> None:
    """Attach the observability options shared by every subcommand.

    ``reproduce`` already owns ``--profile`` (quick/full), so it opts out
    of the boolean profile flag and only gains ``--trace``.
    """
    sp.add_argument(
        "--trace", metavar="FILE", default=None, dest="obs_trace",
        help="write a structured trace (spans, counters, events) as JSON",
    )
    sp.add_argument(
        "--trace-format", choices=["json", "chrome"], default="json",
        dest="obs_trace_format",
        help="trace file format: native JSON, or Chrome trace events "
             "(load the file at ui.perfetto.dev)",
    )
    sp.add_argument(
        "--mem", action="store_true", dest="obs_mem",
        help="attribute tracemalloc peak/net memory to spans "
             "(slows execution; implies nothing without --trace/--profile)",
    )
    sp.add_argument(
        "--journal", metavar="FILE", default=None, dest="obs_journal",
        help="spool every observability event to FILE as it happens "
             "(crash-safe JSONL; recover with `repro obs replay FILE`)",
    )
    sp.add_argument(
        "--live", action="store_true", dest="obs_live",
        help="render a live per-worker status board on stderr "
             "(auto-disabled when stderr is not a TTY)",
    )
    sp.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        dest="obs_metrics_port",
        help="serve Prometheus metrics at http://127.0.0.1:PORT/metrics "
             "for the duration of the command (0 = ephemeral port)",
    )
    sp.add_argument(
        "--profile-sample", nargs="?", const=97, type=int, default=None,
        metavar="HZ", dest="obs_profile_sample",
        help="sample stacks at HZ (default 97) with a SIGPROF interval "
             "timer — pool workers included — and write a collapsed-"
             "stack flamegraph plus speedscope JSON on exit",
    )
    sp.add_argument(
        "--profile-out", metavar="PREFIX", default="repro-profile",
        dest="obs_profile_out",
        help="output prefix for --profile-sample "
             "(writes PREFIX.folded and PREFIX.speedscope.json)",
    )
    sp.add_argument(
        "--trace-sample-rate", type=float, default=1.0, metavar="RATE",
        dest="obs_trace_sample_rate",
        help="head-sampling probability for generated trace contexts "
             "(requests with their own traceparent keep the caller's "
             "decision; ids are minted either way)",
    )
    if profile_flag:
        sp.add_argument(
            "--profile", action="store_true", dest="obs_profile",
            help="print a timing/counter profile to stderr when done",
        )


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for shell-completion tooling)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Computation-centric memory models (Frigo & Luchangco, SPAA 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lat = sub.add_parser("lattice", help="regenerate the Figure 1 lattice")
    lat.add_argument("--sweep-nodes", type=int, default=3,
                     help="inclusion-sweep universe bound (default 3)")
    lat.add_argument("--witness-nodes", type=int, default=4,
                     help="witness-search universe bound (default 4)")
    lat.add_argument("--jobs", type=int, default=None,
                     help="sweep worker processes (default: $REPRO_JOBS or 1; "
                          "0 = all cores)")
    lat.add_argument("--stats", action="store_true",
                     help="print per-shard sweep timings and cache hit rates")
    _add_obs_args(lat)

    fig = sub.add_parser("figures", help="verify and print the paper's figures")
    _add_obs_args(fig)

    run = sub.add_parser("run", help="execute a bundled program and verify")
    run.add_argument("--program", choices=sorted(PROGRAMS), default="fib")
    run.add_argument("--size", type=int, default=None,
                     help="program size parameter (meaning depends on program)")
    run.add_argument("--procs", type=int, default=4)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--memory",
                     choices=["backer", "serial", "directory", "hier"],
                     default="backer")
    run.add_argument("--hier-shape", default="l1l2", metavar="SHAPE",
                     help="hierarchy shape for --memory hier: a preset "
                          "name or @file.json (default l1l2)")
    run.add_argument("--drop-reconcile", type=float, default=0.0,
                     help="BACKER fault injection probability")
    run.add_argument("--drop-flush", type=float, default=0.0)
    run.add_argument("--out", default=None,
                     help="write the trace as JSON to this path")
    run.add_argument("--sanitize", action="store_true",
                     help="check each event against LC during execution; "
                          "halt at the first violation with a witness")
    _add_obs_args(run)

    chk = sub.add_parser("check", help="check a JSON document against the models")
    chk.add_argument("path", help="file produced by `run --out` or repro.io.dumps")
    _add_obs_args(chk)

    lint = sub.add_parser(
        "lint",
        help="multi-rule static analysis of programs or serialized "
             "computations (races, deadlocks, model portability)",
    )
    lint.add_argument(
        "targets", nargs="*", metavar="TARGET",
        help="bundled program name (see `run --program`), a path to a "
             "JSON document containing a computation or trace, or a "
             "directory scanned recursively for *.json documents; "
             "several targets aggregate into one exit code",
    )
    lint.add_argument("--size", type=int, default=None,
                      help="program size parameter (bundled programs only)")
    lint.add_argument("--engine", choices=["auto", "sp-bags", "closure"],
                      default="auto",
                      help="race-pass engine — auto: SP-bags when "
                           "series-parallel, else the exact closure sweep")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text",
                      help="text (default), the PR 2-compatible JSON "
                           "report, or SARIF 2.1.0")
    lint.add_argument("--select", default=None, metavar="RULES",
                      help="comma-separated rule ids or prefixes to run "
                           "(e.g. RACE001 or RACE,DL); default: all")
    lint.add_argument("--ignore", default=None, metavar="RULES",
                      help="comma-separated rule ids or prefixes to skip")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="suppress findings fingerprinted in FILE; "
                           "only new findings affect the exit code")
    lint.add_argument("--write-baseline", action="store_true",
                      help="record every current finding as accepted to "
                           "the baseline file (--baseline or "
                           ".repro-lint-baseline.json) and exit 0")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rules and exit")
    _add_obs_args(lint)

    inf = sub.add_parser(
        "infer",
        help="infer the strongest model consistent with a memory's traces",
    )
    inf.add_argument("--program", choices=sorted(PROGRAMS), default="racy")
    inf.add_argument("--size", type=int, default=None)
    inf.add_argument("--procs", type=int, default=4)
    inf.add_argument("--runs", type=int, default=10)
    inf.add_argument("--memory", choices=["backer", "serial"], default="backer")
    inf.add_argument("--drop-reconcile", type=float, default=0.0)
    inf.add_argument("--drop-flush", type=float, default=0.0)
    _add_obs_args(inf)

    conf = sub.add_parser(
        "conformance",
        help="randomized conformance campaign of a memory against a model",
    )
    conf.add_argument("--target", choices=["SC", "LC", "NN", "NW", "WN", "WW"],
                      default="LC")
    conf.add_argument("--memory", choices=["backer", "serial"], default="backer")
    conf.add_argument("--drop-reconcile", type=float, default=0.0)
    conf.add_argument("--drop-flush", type=float, default=0.0)
    conf.add_argument("--runs", type=int, default=10,
                      help="seeds per (workload, procs) cell")
    _add_obs_args(conf)

    rep = sub.add_parser(
        "reproduce",
        help="regenerate every paper artifact and print the verdict report",
    )
    rep.add_argument("--profile", choices=["quick", "full"], default="quick")
    rep.add_argument("--jobs", type=int, default=None,
                     help="sweep worker processes (default: $REPRO_JOBS or 1; "
                          "0 = all cores)")
    _add_obs_args(rep, profile_flag=False)

    from repro.obs.ledger import DEFAULT_LEDGER, DEFAULT_THRESHOLD, DEFAULT_WINDOW

    ben = sub.add_parser(
        "bench",
        help="run the registered benchmarks and append to the perf ledger",
    )
    ben.add_argument("--list", action="store_true", dest="list_benchmarks",
                     help="list registered benchmarks and exit")
    ben.add_argument("--only", default=None, metavar="NAME[,NAME...]",
                     help="run only these benchmarks (comma-separated)")
    ben.add_argument("--quick", action="store_true",
                     help="reduced problem sizes (CI smoke); quick records "
                          "are only ever compared against quick records")
    ben.add_argument("--repeats", type=int, default=3,
                     help="timed repeats per benchmark (default 3)")
    ben.add_argument("--warmup", type=int, default=1,
                     help="untimed warmup runs per benchmark (default 1)")
    ben.add_argument("--no-check", action="store_true",
                     help="skip the reproduction assertions inside benchmarks")
    ben.add_argument("--ledger", default=DEFAULT_LEDGER, metavar="FILE",
                     help=f"ledger file to append to (default {DEFAULT_LEDGER})")
    ben.add_argument("--no-append", action="store_true",
                     help="measure and report without writing the ledger")
    ben.add_argument("--compare", nargs="?", const=None, default=_NO_COMPARE,
                     metavar="FILE",
                     help="gate this run against a ledger's history "
                          "(default: the --ledger file); exit 2 on regression")
    ben.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                     help="history records per benchmark for the baseline "
                          f"(default {DEFAULT_WINDOW})")
    ben.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                     help="relative wall-p50 regression threshold "
                          f"(default {DEFAULT_THRESHOLD})")
    ben.add_argument("--format", choices=["text", "markdown"], default="text",
                     help="gate report format")
    ben.add_argument("--benchmarks-dir", default="benchmarks",
                     help="directory holding registry.py and bench_*.py "
                          "(default ./benchmarks)")
    _add_obs_args(ben)

    srv = sub.add_parser(
        "serve",
        help="long-running batch trace-checking service "
             "(JSONL over HTTP, or offline with --input)",
    )
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default 127.0.0.1)")
    srv.add_argument("--port", type=int, default=8533,
                     help="listen port (default 8533; 0 = ephemeral, "
                          "announced on stderr)")
    srv.add_argument("--jobs", type=int, default=None,
                     help="checker worker processes (default: $REPRO_JOBS "
                          "or 1; 0 = all cores)")
    srv.add_argument("--checks", default="lc,sc,streaming",
                     metavar="CHECK[,CHECK...]",
                     help="default model checks per item: lc, sc, streaming "
                          "(per-request envelopes may override)")
    srv.add_argument("--sanitize", action="store_true",
                     help="also replay trace items through the LC sanitizer "
                          "(per-event violations with witnesses)")
    srv.add_argument("--select", default=None, metavar="RULE[,RULE...]",
                     help="also run these repro.analysis rules per item "
                          "(e.g. RACE001,DL001)")
    srv.add_argument("--sc-node-limit", type=int, default=12,
                     help="skip the (exponential) SC check above this many "
                          "nodes; verdict reads null (default 12)")
    srv.add_argument("--cache-size", type=int, default=4096,
                     help="verdict LRU capacity, deduped by canonical "
                          "fingerprint (0 disables; default 4096)")
    srv.add_argument("--clear-caches-every", type=int, default=0,
                     metavar="N",
                     help="clear the sweep memoization caches every N "
                          "batches (0 = never)")
    srv.add_argument("--input", default=None, metavar="FILE",
                     help="offline mode: check this JSONL batch file and "
                          "exit instead of serving HTTP")
    srv.add_argument("--output", default="-", metavar="FILE",
                     help="offline mode verdict file (default stdout)")
    srv.add_argument("--replay-ledger", default=None, metavar="JOURNAL",
                     help="print the completed-work ledger recovered from "
                          "a --journal spool (survives kill -9) and exit")
    _add_obs_args(srv)

    obs_p = sub.add_parser(
        "obs",
        help="offline observability tooling: re-render traces, "
             "replay crash journals",
    )
    obs_sub = obs_p.add_subparsers(dest="obs_command", required=True)
    exp = obs_sub.add_parser(
        "export",
        help="re-render a trace JSON or event journal in another format",
    )
    exp.add_argument("path", help="a --trace JSON file or a --journal spool")
    exp.add_argument("--format", choices=["prom", "json", "chrome", "text"],
                     default="prom",
                     help="output format (default: Prometheus text)")
    exp.add_argument("--out", default=None, metavar="FILE",
                     help="write here instead of stdout")
    rep_j = obs_sub.add_parser(
        "replay",
        help="reconstruct a trace from an event journal "
             "(tolerates a journal torn by kill -9)",
    )
    rep_j.add_argument("journal", help="JSONL file written by --journal")
    rep_j.add_argument("--format", choices=["json", "chrome"], default="json")
    rep_j.add_argument("--out", default=None, metavar="FILE",
                       help="write here instead of stdout")

    hier = sub.add_parser(
        "hier",
        help="multi-level BACKER hierarchies: verified traffic studies",
    )
    hier_sub = hier.add_subparsers(dest="hier_command", required=True)
    hsw = hier_sub.add_parser(
        "sweep",
        help="run the cache-shape × latency × workload grid; every "
             "faithful run is post-mortem LC-verified and deterministic "
             "fault probes must be rejected",
    )
    hsw.add_argument("--shapes", default="l1,l1l2,l1l2l3",
                     metavar="SHAPE[,SHAPE...]",
                     help="hierarchy shapes: preset names (flat, l1, l1l2, "
                          "l1l2l3) or @file.json configs (default "
                          "l1,l1l2,l1l2l3)")
    hsw.add_argument("--workloads", default="stencil,racy,fib",
                     metavar="NAME[,NAME...]",
                     help="sweep workloads: stencil, racy, fib, tree-sum "
                          "(default stencil,racy,fib)")
    hsw.add_argument("--procs", default="2,4", metavar="P[,P...]",
                     help="processor counts per cell (default 2,4)")
    hsw.add_argument("--seeds", type=int, default=1,
                     help="work-stealing schedule seeds per cell (default 1)")
    hsw.add_argument("--quick", action="store_true",
                     help="small workload sizes (CI smoke)")
    hsw.add_argument("--no-fault-probes", action="store_true",
                     help="skip the per-level dropped-reconcile/flush "
                          "probes (they must be rejected for exit 0)")
    hsw.add_argument("--out", default=None, metavar="FILE",
                     help="stream one JSON run record per line to FILE")
    _add_obs_args(hsw)
    return parser


def _cmd_lattice(args: argparse.Namespace) -> int:
    from repro.analysis import compute_lattice, render_lattice_result
    from repro.models import Universe

    sweep = Universe(max_nodes=args.sweep_nodes, locations=("x",))
    witness = Universe(
        max_nodes=args.witness_nodes, locations=("x",), include_nop=False
    )
    result = compute_lattice(sweep, witness, jobs=args.jobs)
    print(render_lattice_result(result))
    if args.stats:
        for stats in result.sweep_stats.values():
            print()
            print(stats.render())
    return 0 if not result.matches_paper() else 1


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis import render_pair
    from repro.models import LC, NN, NW, SC, WN, WW
    from repro.paperfigures import (
        figure2_pair,
        figure3_pair,
        figure4_pair,
        lc_not_sc_pair,
    )

    models = (SC, LC, NN, NW, WN, WW)
    for name, pair in [
        ("Figure 2", figure2_pair()),
        ("Figure 3", figure3_pair()),
        ("Figure 4", figure4_pair()),
        ("Store buffer (SC vs LC)", lc_not_sc_pair()),
    ]:
        comp, phi = pair
        print(f"== {name}")
        print(render_pair(comp, phi))
        verdicts = ", ".join(
            f"{m.name}={'∈' if m.contains(comp, phi) else '∉'}" for m in models
        )
        print(f"  {verdicts}")
        print()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.io import dumps
    from repro.runtime import (
        BackerMemory,
        DirectoryMemory,
        HierarchicalBackerMemory,
        SerialMemory,
        execute,
        work_stealing_schedule,
    )
    from repro.runtime.memory_base import MemorySystem
    from repro.verify import TraceSanitizer, trace_admits_lc, trace_admits_sc

    comp, info = _resolve_program(args.program, args.size)

    schedule = work_stealing_schedule(comp, args.procs, rng=args.seed)
    memory: MemorySystem
    if args.memory == "serial":
        memory = SerialMemory()
    elif args.memory == "directory":
        memory = DirectoryMemory()
    elif args.memory == "hier":
        from repro.runtime.hier_sweep import resolve_shape

        memory = HierarchicalBackerMemory(
            resolve_shape(args.hier_shape),
            drop_reconcile_probability=args.drop_reconcile,
            drop_flush_probability=args.drop_flush,
            rng=args.seed,
        )
    else:
        memory = BackerMemory(
            drop_reconcile_probability=args.drop_reconcile,
            drop_flush_probability=args.drop_flush,
            rng=args.seed,
        )
    sanitizer = TraceSanitizer(comp) if args.sanitize else None
    trace = execute(schedule, memory, sanitizer=sanitizer)
    if trace.violation is not None:
        v = trace.violation
        print(
            f"sanitizer: violation at event #{v.event_index} "
            f"(node {v.node}, {v.loc!r}): {v.reason}"
        )
        print(f"  witness nodes: {list(v.witness)}")
        return 2
    po = trace.partial_observer()
    lc_ok = trace_admits_lc(po)
    sc_order = trace_admits_sc(po) if comp.num_nodes <= 64 else None

    print(
        f"program={args.program} nodes={comp.num_nodes} "
        f"spawns={info.spawn_count} procs={args.procs} "
        f"makespan={schedule.makespan} memory={memory.name}"
    )
    print(f"reads={len(trace.reads)} constraints={po.num_constraints()}")
    print(f"location consistent: {'yes' if lc_ok else 'NO — protocol violation'}")
    if comp.num_nodes <= 64:
        print(f"sequentially consistent: {'yes' if sc_order else 'no'}")
    else:
        print("sequentially consistent: (skipped, computation too large)")
    if args.out:
        with open(args.out, "w") as f:
            f.write(dumps(trace))
        print(f"trace written to {args.out}")
    return 0 if lc_ok else 2


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.core import ObserverFunction
    from repro.core.computation import Computation
    from repro.io import loads
    from repro.models import LC, NN, NW, SC, WN, WW
    from repro.runtime import ExecutionTrace, PartialObserver
    from repro.verify import trace_admits_lc, trace_admits_sc

    with open(args.path) as f:
        obj = loads(f.read())

    if isinstance(obj, ExecutionTrace):
        obj = obj.partial_observer()
    if isinstance(obj, PartialObserver):
        comp = obj.comp
        lc = trace_admits_lc(obj)
        print(f"partial observer: {comp.num_nodes} nodes, "
              f"{obj.num_constraints()} constraints")
        print(f"  completable within LC: {'yes' if lc else 'no'}")
        if comp.num_nodes <= 64:
            sc = trace_admits_sc(obj)
            print(f"  completable within SC: {'yes' if sc is not None else 'no'}")
        return 0 if lc else 2
    if isinstance(obj, ObserverFunction):
        comp = obj.computation
        print(f"observer function: {comp.num_nodes} nodes")
        for m in (SC, LC, NN, NW, WN, WW):
            print(f"  {m.name}: {'∈' if m.contains(comp, obj) else '∉'}")
        return 0
    if isinstance(obj, Computation):
        print(f"computation: {obj.num_nodes} nodes, "
              f"{obj.dag.num_edges} edges, locations={list(obj.locations)}")
        return 0
    print(f"unsupported document type {type(obj).__name__}", file=sys.stderr)
    return 1


def _expand_lint_targets(targets: Sequence[str]) -> list[str]:
    """Resolve CLI lint targets: program names, files, directories.

    Directories are scanned recursively for ``*.json`` documents
    (baseline files are skipped — they are lint *state*, not input).
    """
    import os

    from repro.analysis import DEFAULT_BASELINE

    expanded: list[str] = []
    for target in targets:
        if target in PROGRAMS:
            expanded.append(target)
        elif os.path.isdir(target):
            hits = sorted(
                os.path.join(root, fn)
                for root, _dirs, files in os.walk(target)
                for fn in files
                if fn.endswith(".json")
                and fn != os.path.basename(DEFAULT_BASELINE)
            )
            if not hits:
                raise ValueError(
                    f"directory {target!r} contains no *.json documents"
                )
            expanded.extend(hits)
        elif os.path.exists(target):
            expanded.append(target)
        else:
            raise ValueError(
                f"{target!r} is neither a bundled program "
                f"({', '.join(sorted(PROGRAMS))}) nor an existing file "
                f"or directory"
            )
    return expanded


def _lint_context(
    target: str,
    size: int | None,
    engine: str,
    explicit: frozenset,
):
    """Build one :class:`~repro.analysis.AnalysisContext` per target."""
    from repro.analysis import AnalysisContext

    if target in PROGRAMS:
        comp, info = _resolve_program(target, size)
        return AnalysisContext(
            comp,
            target=target,
            engine=engine,
            sp=info.sp,
            lock_sections=info.lock_sections,
            node_paths=info.node_paths,
            names=info.names,
            explicit=explicit,
        )

    from repro.core.computation import Computation
    from repro.io import loads
    from repro.runtime import ExecutionTrace

    with open(target) as f:
        obj = loads(f.read())
    trace = None
    if isinstance(obj, ExecutionTrace):
        trace = obj
        comp = obj.comp
    elif isinstance(obj, Computation):
        comp = obj
    else:
        comp = getattr(obj, "comp", None) or getattr(
            obj, "computation", None
        )
        if not isinstance(comp, Computation):
            raise ValueError(
                f"document {target!r} carries no computation "
                f"(got {type(obj).__name__})"
            )
    return AnalysisContext(
        comp, target=target, engine=engine, trace=trace, explicit=explicit
    )


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import (
        DEFAULT_BASELINE,
        all_rules,
        apply_baseline,
        finding_fingerprint,
        load_baseline,
        run_analysis,
        sarif_document,
        select_rules,
        write_baseline,
    )

    if args.list_rules:
        for rule in all_rules():
            flags = [
                flag
                for flag, on in (
                    ("trace-only", rule.trace_only),
                    ("opt-in", rule.opt_in),
                )
                if on
            ]
            suffix = f" [{', '.join(flags)}]" if flags else ""
            engines = ", ".join(rule.engines) or "-"
            print(
                f"{rule.id:<8}  {rule.severity:<7}  {engines:<28}  "
                f"{rule.doc}{suffix}"
            )
        return 0

    if not args.targets:
        raise ValueError(
            "no lint targets given (bundled program name, JSON file, "
            "or directory); see also --list-rules"
        )

    rules = select_rules(args.select, args.ignore)
    # Rules named in --select count as explicitly requested: opt-in
    # rules run only for users who asked for them.
    explicit = (
        frozenset(r.id for r in rules) if args.select else frozenset()
    )

    reports = [
        run_analysis(
            _lint_context(target, args.size, args.engine, explicit),
            rules,
        )
        for target in _expand_lint_targets(args.targets)
    ]

    if args.write_baseline:
        path = args.baseline or DEFAULT_BASELINE
        doc = write_baseline(path, reports)
        apply_baseline(reports, set(doc["findings"]))
        print(
            f"baseline: recorded {len(doc['findings'])} finding(s) "
            f"to {path}",
            file=sys.stderr,
        )
    elif args.baseline:
        accepted = load_baseline(args.baseline)
        n = apply_baseline(reports, accepted)
        print(
            f"baseline: suppressed {n} finding(s) via {args.baseline}",
            file=sys.stderr,
        )

    if args.format == "sarif":
        fingerprints = {
            id(f): finding_fingerprint(rep.target, f)
            for rep in reports
            for f in rep.findings
        }
        doc = sarif_document(reports, rules, fingerprints=fingerprints)
        print(json.dumps(doc, indent=2, sort_keys=True))
    elif args.format == "json":
        if len(reports) == 1:
            print(reports[0].to_json())
        else:
            aggregate = {
                "clean": all(r.clean for r in reports),
                "targets": len(reports),
                "errors": sum(len(r.errors) for r in reports),
                "reports": [r.to_dict() for r in reports],
            }
            print(json.dumps(aggregate, indent=2, sort_keys=True))
    else:
        for rep in reports:
            print(rep.render_text())
    return 0 if all(r.clean for r in reports) else 2


def _make_memory(args: argparse.Namespace, seed: int):
    from repro.runtime import BackerMemory, SerialMemory

    if args.memory == "serial":
        return SerialMemory()
    return BackerMemory(
        drop_reconcile_probability=args.drop_reconcile,
        drop_flush_probability=args.drop_flush,
        rng=seed,
    )


def _cmd_infer(args: argparse.Namespace) -> int:
    from repro.runtime import execute, work_stealing_schedule
    from repro.verify import infer_models

    comp, _ = _resolve_program(args.program, args.size)

    traces = []
    for seed in range(args.runs):
        sched = work_stealing_schedule(comp, args.procs, rng=seed)
        traces.append(
            execute(sched, _make_memory(args, seed)).partial_observer()
        )
    result = infer_models(traces)
    print(f"observed {result.traces_seen} traces of {args.program} "
          f"under {args.memory}")
    for name, ok in result.consistent.items():
        note = (
            ""
            if ok
            else f"  (eliminated by trace #{result.eliminated_by[name]})"
        )
        print(f"  {name}: {'consistent' if ok else 'VIOLATED'}{note}")
    strongest = result.strongest_consistent()
    print(f"strongest consistent model: {strongest or 'none in the zoo'}")
    return 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    import repro.lang as lang
    from repro.verify import conformance_campaign

    workloads = [
        lang.tree_sum_computation(8)[0],
        lang.racy_counter_computation(4, 3)[0],
        lang.store_buffer_computation()[0],
    ]
    report = conformance_campaign(
        lambda seed: _make_memory(args, seed),
        workloads,
        target=args.target,
        procs=(2, 4),
        seeds=range(args.runs),
    )
    print(
        f"conformance vs {args.target}: {report.runs} runs, "
        f"{len(report.violations)} violations"
    )
    for v in report.violations[:5]:
        print(
            f"  workload #{v.workload_index} procs={v.procs} seed={v.seed} "
            f"({v.num_constraints} constraints)"
        )
    if len(report.violations) > 5:
        print(f"  ... and {len(report.violations) - 5} more")
    return 0 if report.ok else 2


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.analysis import full_reproduction, render_report

    report = full_reproduction(args.profile, jobs=args.jobs)
    print(render_report(report))
    return 0 if report.ok else 1


def _load_bench_registry(benchmarks_dir: str):
    """Import ``registry.py`` from the benchmarks directory.

    Loaded by *path* (under a private module name, so an unrelated
    ``registry`` package on ``sys.path`` can't shadow it); the directory
    itself still joins ``sys.path`` because the registry resolves its
    ``bench_*`` modules by plain import.
    """
    import importlib.util
    import os

    bench_dir = os.path.abspath(benchmarks_dir)
    reg_path = os.path.join(bench_dir, "registry.py")
    if not os.path.isfile(reg_path):
        raise ValueError(
            f"no benchmark registry at {reg_path} "
            "(run from the repo root or pass --benchmarks-dir)"
        )
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    spec = importlib.util.spec_from_file_location(
        "_repro_bench_registry", reg_path
    )
    assert spec is not None and spec.loader is not None
    registry = importlib.util.module_from_spec(spec)
    sys.modules["_repro_bench_registry"] = registry
    spec.loader.exec_module(registry)
    return registry


def _cmd_bench(args: argparse.Namespace) -> int:
    import time

    from repro.obs import ledger

    registry = _load_bench_registry(args.benchmarks_dir)
    only = (
        [s.strip() for s in args.only.split(",") if s.strip()]
        if args.only
        else None
    )
    specs = registry.select(only)
    if args.list_benchmarks:
        width = max(len(s.name) for s in specs)
        for spec in specs:
            print(f"{spec.name:<{width}}  {spec.description}")
        return 0
    if args.repeats < 1:
        raise ValueError(f"--repeats must be >= 1, got {args.repeats}")

    check = not args.no_check
    records = []
    for spec in specs:
        run = registry.load(spec)
        print(f"bench {spec.name}: warmup x{args.warmup}, "
              f"repeats x{args.repeats}"
              f"{' (quick)' if args.quick else ''} ...", file=sys.stderr)
        for _ in range(args.warmup):
            run(check=False, quick=args.quick)
        walls: list[float] = []
        counters: dict = {}
        for _ in range(args.repeats):
            t0 = time.perf_counter()
            result = run(check=check, quick=args.quick)
            walls.append(time.perf_counter() - t0)
            if isinstance(result, dict):
                counters = result.get("counters", result)
        rec = ledger.make_record(
            spec.name,
            walls,
            counters=counters,
            check=check,
            quick=args.quick,
            warmup=args.warmup,
        )
        records.append(rec)
        print(f"bench {spec.name}: wall p50 "
              f"{rec['wall_seconds']['p50']:.4f}s", file=sys.stderr)

    exit_code = 0
    if args.compare != _NO_COMPARE:
        import os

        history_path = args.ledger if args.compare is None else args.compare
        # A missing history is not an error: the first gated run has
        # nothing to regress against, so every benchmark reads "new".
        history = (
            ledger.read_ledger(history_path)
            if os.path.exists(history_path)
            else []
        )
        report = ledger.compare_records(
            history, records, window=args.window, threshold=args.threshold
        )
        print(report.render(markdown=args.format == "markdown"))
        if not report.ok:
            exit_code = 2
    if not args.no_append:
        ledger.append_records(args.ledger, records)
        print(f"{len(records)} record(s) appended to {args.ledger}",
              file=sys.stderr)
    return exit_code


def _cmd_hier(args: argparse.Namespace) -> int:
    from repro.runtime.hier_sweep import (
        hier_sweep,
        render_sweep_table,
        resolve_shape,
    )

    shapes = [
        resolve_shape(s.strip())
        for s in args.shapes.split(",")
        if s.strip()
    ]
    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    procs_list = [int(p) for p in args.procs.split(",") if p.strip()]
    if not shapes or not workloads or not procs_list:
        raise ValueError("need at least one shape, workload and proc count")
    if args.seeds < 1:
        raise ValueError(f"--seeds must be >= 1, got {args.seeds}")

    out_file = open(args.out, "w") if args.out else None
    try:
        import json

        def progress(record: dict) -> None:
            if out_file is not None:
                out_file.write(json.dumps(record, sort_keys=True) + "\n")

        result = hier_sweep(
            shapes,
            workloads,
            procs_list,
            seeds=range(args.seeds),
            quick=args.quick,
            fault_probes=not args.no_fault_probes,
            progress=progress,
        )
    finally:
        if out_file is not None:
            out_file.close()
    if args.out:
        print(f"{len(result.records)} run record(s) written to {args.out}",
              file=sys.stderr)
    print(render_sweep_table(result))
    return 0 if result.ok else 2


def _load_trace_or_journal(path: str):
    """Load a trace JSON *or* an event journal as an ``Observability``.

    A journal is JSONL whose first record is a ``{"kind": ...}`` object;
    anything else is treated as an ``export_json`` trace document."""
    import json

    from repro.obs.journal import observability_from_trace, replay_journal

    with open(path) as f:
        head = f.readline()
    try:
        first = json.loads(head)
    except json.JSONDecodeError:
        first = None
    if isinstance(first, dict) and "kind" in first:
        return replay_journal(path).obs
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        raise ValueError(f"{path!r} is neither a trace document nor a journal")
    return observability_from_trace(doc)


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import export_chrome, export_json, render_text
    from repro.obs.journal import replay_journal
    from repro.obs.metrics import render_prometheus

    if args.obs_command == "replay":
        replay = replay_journal(args.journal)
        out = (
            export_chrome(replay.obs)
            if args.format == "chrome"
            else export_json(replay.obs)
        ) + "\n"
        aborted = (
            f", {len(replay.aborted)} span(s) closed as aborted "
            f"({', '.join(sorted(set(replay.aborted)))})"
            if replay.aborted
            else ""
        )
        print(
            f"replayed {replay.records} record(s) from {args.journal} "
            f"({'clean shutdown' if replay.clean else 'torn journal'}, "
            f"{replay.dropped} dropped line(s){aborted})",
            file=sys.stderr,
        )
    else:  # export
        target = _load_trace_or_journal(args.path)
        if args.format == "prom":
            out = render_prometheus(target)
        elif args.format == "json":
            out = export_json(target) + "\n"
        elif args.format == "chrome":
            out = export_chrome(target) + "\n"
        else:
            out = render_text(target) + "\n"
    if args.out:
        with open(args.out, "w") as f:
            f.write(out)
        print(f"written to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(out)
    return 0


def _obs_finish(
    trace_path: str | None, profile: bool, trace_format: str = "json"
) -> None:
    """Export the collected trace/profile and shut the collector down."""
    from repro.obs import export_chrome, export_json, render_text

    try:
        if trace_path is not None:
            doc = export_chrome() if trace_format == "chrome" else export_json()
            with open(trace_path, "w") as f:
                f.write(doc)
                f.write("\n")
            print(f"trace written to {trace_path}", file=sys.stderr)
        if profile:
            print(render_text(), file=sys.stderr)
    except OSError as exc:
        print(f"repro: error writing trace: {exc}", file=sys.stderr)
    finally:
        obs.disable()


def _start_sampling_profiler(hz: int) -> tuple[Any, str]:
    """Arm the SIGPROF sampler and publish the worker spill spec.

    Returns ``(profiler, spill_dir)``.  The spec travels to pool
    workers through the pool initializer (the same channel as the
    heartbeat queue); each worker spills folded stacks into
    ``spill_dir`` periodically, because forked children skip ``atexit``
    and can never be relied on to flush at shutdown.
    """
    import tempfile

    from repro.obs import profile as obs_profile

    spill_dir = tempfile.mkdtemp(prefix="repro-prof-")
    obs_profile.set_worker_spec({"hz": hz, "dir": spill_dir})
    profiler = obs_profile.SamplingProfiler(hz=hz)
    profiler.start()
    return profiler, spill_dir


def _finish_sampling_profiler(
    profiler: Any, spill_dir: str, out_prefix: str, hz: int
) -> None:
    """Stop sampling, merge worker spills, export both formats."""
    import json as json_mod
    import shutil

    from repro.obs import profile as obs_profile

    try:
        profiler.stop()
        profiles = {os.getpid(): profiler.folded()}
        for pid, table in obs_profile.merge_folded_dir(spill_dir).items():
            profiles.setdefault(pid, table)
        profiles = {pid: t for pid, t in profiles.items() if t}
        folded_path = f"{out_prefix}.folded"
        speedscope_path = f"{out_prefix}.speedscope.json"
        merged = obs_profile.merge_folded(profiles.values())
        with open(folded_path, "w") as f:
            f.write(obs_profile.render_collapsed(merged))
        doc = obs_profile.export_speedscope(profiles, hz)
        with open(speedscope_path, "w") as f:
            json_mod.dump(doc, f)
            f.write("\n")
        total = sum(merged.values())
        print(
            f"profile: {total} sample(s) across {len(profiles)} "
            f"process(es) at {hz} Hz -> {folded_path}, {speedscope_path}",
            file=sys.stderr,
        )
    except OSError as exc:
        print(f"repro: error writing profile: {exc}", file=sys.stderr)
    finally:
        obs_profile.set_worker_spec(None)
        shutil.rmtree(spill_dir, ignore_errors=True)


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the batch trace-checking service.

    Three modes: ``--replay-ledger`` prints the completed-work ledger
    recovered from a crash journal; ``--input`` checks one JSONL batch
    offline; otherwise the asyncio HTTP front-end serves until
    SIGTERM/SIGINT and drains in-flight work before exiting.  The
    shared observability flags do the heavy telemetry lifting:
    ``--journal`` makes batches crash-replayable, ``--metrics-port``
    exposes the serve counters/histograms to Prometheus scrapers.
    """
    import asyncio
    import json

    from repro.serve import (
        CheckOptions,
        TraceCheckService,
        replay_serve_ledger,
        run_batch_file,
        serve_http,
    )

    if args.replay_ledger is not None:
        ledger = replay_serve_ledger(args.replay_ledger)
        print(json.dumps(ledger, indent=2))
        return 0 if ledger["clean"] or ledger["pending"] == 0 else 1

    options = CheckOptions(
        checks=tuple(
            c.strip() for c in args.checks.split(",") if c.strip()
        ),
        sanitize=args.sanitize,
        rules=tuple(
            r.strip() for r in (args.select or "").split(",") if r.strip()
        ),
        sc_node_limit=args.sc_node_limit,
    )
    service = TraceCheckService(
        options=options,
        jobs=args.jobs,
        cache_size=args.cache_size,
        clear_caches_every=args.clear_caches_every,
        trace_sample_rate=getattr(args, "obs_trace_sample_rate", 1.0),
    )
    with service:
        if args.input is not None:
            return run_batch_file(service, args.input, args.output)
        asyncio.run(serve_http(service, args.host, args.port))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "lattice": _cmd_lattice,
        "figures": _cmd_figures,
        "run": _cmd_run,
        "check": _cmd_check,
        "lint": _cmd_lint,
        "infer": _cmd_infer,
        "conformance": _cmd_conformance,
        "reproduce": _cmd_reproduce,
        "bench": _cmd_bench,
        "obs": _cmd_obs,
        "serve": _cmd_serve,
        "hier": _cmd_hier,
    }[args.command]
    trace_path: str | None = getattr(args, "obs_trace", None)
    trace_format: str = getattr(args, "obs_trace_format", "json")
    profile: bool = bool(getattr(args, "obs_profile", False))
    journal_path: str | None = getattr(args, "obs_journal", None)
    live: bool = bool(getattr(args, "obs_live", False))
    metrics_port: int | None = getattr(args, "obs_metrics_port", None)
    use_obs = (
        trace_path is not None
        or profile
        or journal_path is not None
        or live
        or metrics_port is not None
    )
    # An inherited traceparent (REPRO_TRACEPARENT, the env analog of
    # the HTTP header) roots this whole invocation in the caller's
    # distributed trace; spans, journals and serve batches inherit it.
    env_traceparent = os.environ.get("REPRO_TRACEPARENT")
    if env_traceparent:
        from repro.obs import context as trace_context

        trace_context.set_current(
            trace_context.mint(
                env_traceparent,
                getattr(args, "obs_trace_sample_rate", 1.0),
            )
        )
    profiler_state: tuple[Any, str] | None = None
    profile_hz: int | None = getattr(args, "obs_profile_sample", None)
    if profile_hz is not None:
        if profile_hz <= 0:
            print(
                f"repro: error: --profile-sample must be positive, "
                f"got {profile_hz}",
                file=sys.stderr,
            )
            return 2
        profiler_state = _start_sampling_profiler(profile_hz)
    journal = board = monitor = server = None
    if use_obs:
        obs.reset()
        obs.enable()
        if getattr(args, "obs_mem", False):
            obs.enable_memory()
        if journal_path is not None:
            from repro.obs.core import set_journal
            from repro.obs.journal import Journal

            journal = Journal(journal_path)
            set_journal(journal)
        if live:
            from repro.obs.live import LiveBoard

            board = LiveBoard()
        if journal is not None or board is not None:
            from repro.runtime.parallel import SweepMonitor, set_sweep_monitor

            monitor = SweepMonitor(
                listeners=[x for x in (journal, board) if x is not None]
            )
            set_sweep_monitor(monitor)
        if metrics_port is not None:
            from repro.obs.metrics import MetricsServer

            server = MetricsServer(metrics_port).start()
            print(f"serving metrics at {server.url}", file=sys.stderr)
    try:
        with obs.span(f"repro.{args.command}"):
            return handler(args)
    except (ValueError, OSError, ReproError) as exc:
        # Bad runtime configuration (REPRO_JOBS=banana), an unknown
        # program name, a missing/unreadable input file, or a malformed
        # JSON document (json.JSONDecodeError is a ValueError,
        # repro.io.FormatError a ReproError): a clean one-line error,
        # not a traceback.
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2
    finally:
        if profiler_state is not None:
            profiler, spill_dir = profiler_state
            _finish_sampling_profiler(
                profiler,
                spill_dir,
                getattr(args, "obs_profile_out", "repro-profile"),
                profile_hz if profile_hz is not None else 97,
            )
        if use_obs:
            if monitor is not None:
                from repro.runtime.parallel import set_sweep_monitor

                set_sweep_monitor(None)
            if board is not None:
                board.finish()
            if server is not None:
                server.stop()
            if getattr(args, "obs_mem", False):
                obs.disable_memory()
            _obs_finish(trace_path, profile, trace_format)
            if journal is not None:
                from repro.obs.core import set_journal

                journal.close()
                set_journal(None)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
