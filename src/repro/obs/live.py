"""The live TTY status board: per-worker sweep progress, in place.

``--live`` on ``reproduce``/``run``/``bench``/``lattice`` renders one
row per worker process — current shard, pairs processed, throughput,
cache-hit ratio — plus a header with shard completion and an ETA
derived from the median wall time of completed shards.  Rendering is
plain ANSI (cursor-up + erase-line; no dependencies) on *stderr*, so a
piped stdout stays clean, and the board auto-disables when the stream
is not a TTY (``--live`` in CI degrades to nothing rather than
escape-code soup).

The board is a sweep-monitor listener (see
:class:`repro.runtime.parallel.SweepMonitor`): it consumes the same
heartbeat/shard-done stream the journal spools, and keeps no state the
stream didn't carry — killing the process mid-render loses nothing.
"""

from __future__ import annotations

import statistics
import sys
import time
from typing import Any, Callable, TextIO

__all__ = ["LiveBoard", "format_eta"]


def format_eta(seconds: float) -> str:
    """``mm:ss`` (or ``h:mm:ss`` past the hour) for a duration estimate."""
    seconds = max(0, int(round(seconds)))
    h, rem = divmod(seconds, 3600)
    m, s = divmod(rem, 60)
    return f"{h}:{m:02d}:{s:02d}" if h else f"{m:02d}:{s:02d}"


class LiveBoard:
    """An in-place ANSI progress board fed by sweep heartbeats.

    ``force`` overrides the TTY autodetection (tests render into a
    ``StringIO``); ``clock`` is injectable for deterministic redraw
    gating.  All listener methods are cheap no-ops when disabled.
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        min_redraw_seconds: float = 0.1,
        force: bool | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_redraw_seconds = min_redraw_seconds
        self._clock = clock
        isatty = getattr(self.stream, "isatty", lambda: False)
        self.enabled = force if force is not None else bool(isatty())
        self._lines_drawn = 0
        self._last_draw = -1.0e9
        # Sweep-level state
        self.label = ""
        self.jobs = 0
        self.total_shards = 0
        self.done_shards = 0
        self.shard_seconds: list[float] = []
        self._sweep_t0 = 0.0
        # pid → row state (insertion order = display order)
        self.workers: dict[int, dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # Sweep-monitor listener protocol
    # ------------------------------------------------------------------

    def on_sweep_start(self, label: str, shards: int, jobs: int) -> None:
        if not self.enabled:
            return
        self.label = label
        self.total_shards = shards
        self.jobs = jobs
        self.done_shards = 0
        self.shard_seconds = []
        self.workers = {}
        self._sweep_t0 = self._clock()
        self._draw(flush=True)

    def on_heartbeat(self, hb: dict) -> None:
        if not self.enabled:
            return
        pid = hb.get("pid", 0)
        hits = hb.get("cache_hits", 0)
        misses = hb.get("cache_misses", 0)
        lookups = hits + misses
        elapsed = hb.get("elapsed", 0.0)
        pairs = hb.get("pairs_done", 0)
        self.workers[pid] = {
            "shard": f"n={hb.get('n', '?')} "
            f"masks[{hb.get('mask_lo', '?')}:{hb.get('mask_hi', '?')})",
            "pairs": pairs,
            "rate": pairs / elapsed if elapsed > 0 else 0.0,
            "hit_ratio": hits / lookups if lookups else None,
        }
        self._draw()

    def on_shard_done(self, meta: dict) -> None:
        if not self.enabled:
            return
        self.done_shards += 1
        self.shard_seconds.append(float(meta.get("seconds", 0.0)))
        pid = meta.get("pid", 0)
        row = self.workers.get(pid)
        if row is not None:
            row["shard"] = "(idle)"
        self._draw()

    def on_sweep_done(self, label: str, wall_seconds: float) -> None:
        if not self.enabled:
            return
        self._erase()
        self.stream.write(
            f"sweep {label}: {self.done_shards}/{self.total_shards} shards "
            f"in {wall_seconds:.2f}s\n"
        )
        self.stream.flush()
        self._lines_drawn = 0
        self.workers = {}

    def finish(self) -> None:
        """Clear the board (end of run; leaves prior summaries intact)."""
        if not self.enabled:
            return
        self._erase()
        self.stream.flush()

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def eta_seconds(self) -> float | None:
        """Median-of-completed-shards ETA for the current sweep."""
        remaining = self.total_shards - self.done_shards
        if remaining <= 0 or not self.shard_seconds:
            return None
        median = statistics.median(self.shard_seconds)
        lanes = max(1, min(self.jobs, remaining))
        return remaining * median / lanes

    def render(self) -> list[str]:
        """The board's current lines (no ANSI; used by tests too)."""
        eta = self.eta_seconds()
        header = (
            f"sweep {self.label or '?'}  "
            f"{self.done_shards}/{self.total_shards} shards  "
            f"jobs={self.jobs}"
        )
        if eta is not None:
            header += f"  ETA {format_eta(eta)}"
        lines = [header]
        for pid in sorted(self.workers):
            row = self.workers[pid]
            hit = (
                f"cache {row['hit_ratio'] * 100:3.0f}%"
                if row["hit_ratio"] is not None
                else "cache   —"
            )
            lines.append(
                f"  pid {pid:<8} {row['shard']:<24} "
                f"{row['pairs']:>8} pairs  {row['rate']:>8.0f}/s  {hit}"
            )
        return lines

    def _erase(self) -> None:
        if self._lines_drawn:
            # Up N lines, then erase from cursor to end of screen.
            self.stream.write(f"\x1b[{self._lines_drawn}A\x1b[J")
            self._lines_drawn = 0

    def _draw(self, flush: bool = True) -> None:
        now = self._clock()
        if now - self._last_draw < self.min_redraw_seconds:
            return
        self._last_draw = now
        lines = self.render()
        self._erase()
        for line in lines:
            self.stream.write("\x1b[2K" + line + "\n")
        self._lines_drawn = len(lines)
        if flush:
            self.stream.flush()
