"""Signal-based sampling profiler with flamegraph-ready exports.

``setitimer(ITIMER_PROF)`` delivers ``SIGPROF`` every ``1/hz`` seconds
of *CPU* time; the handler walks the interrupted Python stack and
bumps a counter for the folded frame tuple.  That gives a statistical
CPU profile whose overhead is one stack walk per tick — a few
microseconds at the default 97 Hz — instead of the ~2x slowdown of a
tracing profiler, so it is safe to leave on for whole serve runs.

Two POSIX facts shape the design:

* **Handlers survive fork, itimers do not.**  A pool worker forked
  from a profiling parent inherits the SIGPROF handler but no timer,
  so it samples nothing by default — and the handler pid-guards itself
  anyway, so even a stray tick in a child can never account CPU to the
  parent's table.  Workers that *should* profile get their own
  profiler installed by the pool initializer (the same channel that
  installs heartbeats), armed with a fresh timer in the child.
* **Forked children skip ``atexit``.**  ``multiprocessing`` children
  leave via ``os._exit``, so a worker cannot flush its samples on
  shutdown.  Worker profilers therefore dump their folded stacks to a
  spill directory periodically (atomic ``os.replace``, so a dump torn
  by exit is invisible); the parent merges whatever the spill dir
  holds at drain time.

Exports: collapsed-stack text (``stack;frames;leaf count`` — the
flamegraph.pl / speedscope import format) and speedscope's sampled
JSON schema, one profile per pid.  Sampling frequencies are primes
(97, 199) by convention so the tick never locks phase with millisecond-
aligned periodic work.
"""

from __future__ import annotations

import json
import os
import signal
import time
from typing import Any, Iterable

__all__ = [
    "DEFAULT_HZ",
    "SamplingProfiler",
    "set_worker_spec",
    "worker_spec",
    "start_worker_profiler",
    "active_worker_profiler",
    "merge_folded",
    "merge_folded_dir",
    "render_collapsed",
    "export_speedscope",
    "validate_speedscope",
    "validate_speedscope_file",
]

#: Default sampling frequency.  Prime, so the tick drifts relative to
#: any millisecond-aligned periodic work instead of aliasing with it.
DEFAULT_HZ = 97

#: Frames deeper than this are truncated (recursion guard; flamegraphs
#: past this depth are unreadable anyway).
_MAX_DEPTH = 128

#: How often a spilling profiler rewrites its folded file (seconds of
#: wall time, checked from the signal handler).
_SPILL_EVERY = 0.5


class SamplingProfiler:
    """A per-process SIGPROF stack sampler.

    ``start()``/``stop()`` must run on the main thread (CPython routes
    signal delivery there, and ``signal.signal`` refuses other
    threads).  ``spill_path`` makes the profiler periodically persist
    its folded stacks — the survival mechanism for forked workers that
    will never run ``stop()``.
    """

    def __init__(
        self,
        hz: int = DEFAULT_HZ,
        spill_path: str | None = None,
        spill_every: float = _SPILL_EVERY,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"sampling frequency must be positive, got {hz}")
        self.hz = int(hz)
        self.spill_path = spill_path
        self.spill_every = float(spill_every)
        self.samples: dict[tuple[str, ...], int] = {}
        self.sample_count = 0
        self._pid: int | None = None
        self._prev_handler: Any = None
        self._running = False
        self._last_spill = 0.0

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._pid = os.getpid()
        self._prev_handler = signal.signal(signal.SIGPROF, self._on_sigprof)
        interval = 1.0 / self.hz
        signal.setitimer(signal.ITIMER_PROF, interval, interval)
        self._running = True
        self._last_spill = time.monotonic()

    def stop(self) -> None:
        if not self._running:
            return
        signal.setitimer(signal.ITIMER_PROF, 0.0, 0.0)
        try:
            signal.signal(signal.SIGPROF, self._prev_handler or signal.SIG_DFL)
        except (ValueError, TypeError):
            # Restoring an exotic saved handler can fail; the timer is
            # already disarmed, which is what matters.
            pass
        self._running = False
        if self.spill_path:
            self.spill()

    @property
    def running(self) -> bool:
        return self._running

    # -- sampling -----------------------------------------------------

    def _on_sigprof(self, signum, frame) -> None:
        # Fork guard: children inherit this handler (but not the
        # itimer).  If a tick lands in a child anyway, never account
        # it to the parent's table.
        if os.getpid() != self._pid:
            return
        stack = []
        f = frame
        depth = 0
        while f is not None and depth < _MAX_DEPTH:
            code = f.f_code
            stack.append(
                f"{os.path.basename(code.co_filename)}:{code.co_name}"
            )
            f = f.f_back
            depth += 1
        key = tuple(reversed(stack))
        self.samples[key] = self.samples.get(key, 0) + 1
        self.sample_count += 1
        if self.spill_path:
            now = time.monotonic()
            if now - self._last_spill >= self.spill_every:
                self._last_spill = now
                self.spill()

    # -- output -------------------------------------------------------

    def folded(self) -> dict[str, int]:
        """``{"root;frame;leaf": count}`` for every sampled stack."""
        return {";".join(stack): n for stack, n in self.samples.items()}

    def spill(self, path: str | None = None) -> str:
        """Atomically persist the folded stacks (tmp + ``os.replace``,
        so a dump torn by ``os._exit`` is never observed)."""
        path = path or self.spill_path
        if path is None:
            raise ValueError("no spill path configured")
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as f:
            for stack, count in sorted(self.folded().items()):
                f.write(f"{stack} {count}\n")
        os.replace(tmp, path)
        return path


# ----------------------------------------------------------------------
# Worker propagation (pool-initializer channel)
# ----------------------------------------------------------------------

#: Parent-side spec describing the profiler pool workers should run,
#: or None when profiling is off.  Shipped to workers as an initarg by
#: the dispatchers in runtime.parallel and serve.service.
_WORKER_SPEC: dict[str, Any] | None = None

#: The profiler running in *this* process because a pool initializer
#: installed it (worker side).
_WORKER_PROFILER: SamplingProfiler | None = None


def set_worker_spec(spec: dict[str, Any] | None) -> None:
    """Publish (or clear) the worker profiling spec.

    ``spec`` is a picklable ``{"hz": int, "dir": str}`` — workers spill
    ``profile-<pid>.folded`` files into ``dir`` for the parent to merge
    at drain.
    """
    global _WORKER_SPEC
    _WORKER_SPEC = dict(spec) if spec is not None else None


def worker_spec() -> dict[str, Any] | None:
    return None if _WORKER_SPEC is None else dict(_WORKER_SPEC)


def start_worker_profiler(spec: dict[str, Any]) -> SamplingProfiler:
    """Install and arm a profiler in a pool worker (initializer hook).

    Idempotent per process: a worker re-initialized with the same spec
    keeps its existing profiler.  The worker never calls ``stop()`` —
    the periodic spill is how its samples reach the parent.
    """
    global _WORKER_PROFILER
    if _WORKER_PROFILER is not None and _WORKER_PROFILER.running:
        return _WORKER_PROFILER
    path = os.path.join(str(spec["dir"]), f"profile-{os.getpid()}.folded")
    prof = SamplingProfiler(hz=int(spec.get("hz", DEFAULT_HZ)), spill_path=path)
    prof.start()
    _WORKER_PROFILER = prof
    return prof


def active_worker_profiler() -> SamplingProfiler | None:
    return _WORKER_PROFILER


# ----------------------------------------------------------------------
# Merging and export
# ----------------------------------------------------------------------

def merge_folded(tables: Iterable[dict[str, int]]) -> dict[str, int]:
    """Sum folded-stack tables (e.g. all pids into one flamegraph)."""
    out: dict[str, int] = {}
    for table in tables:
        for stack, count in table.items():
            out[stack] = out.get(stack, 0) + int(count)
    return out


def merge_folded_dir(path: str) -> dict[int, dict[str, int]]:
    """Read every ``profile-<pid>.folded`` spill in ``path``.

    Returns ``{pid: folded_table}``; unparseable lines are skipped (a
    spill can only be torn at file granularity thanks to the atomic
    replace, but be forgiving anyway).
    """
    profiles: dict[int, dict[str, int]] = {}
    if not os.path.isdir(path):
        return profiles
    for name in sorted(os.listdir(path)):
        if not (name.startswith("profile-") and name.endswith(".folded")):
            continue
        pid_str = name[len("profile-"):-len(".folded")]
        if not pid_str.isdigit():
            continue
        table: dict[str, int] = {}
        with open(os.path.join(path, name), encoding="utf-8") as f:
            for line in f:
                stack, _, count = line.rstrip("\n").rpartition(" ")
                if stack and count.isdigit():
                    table[stack] = table.get(stack, 0) + int(count)
        if table:
            profiles[int(pid_str)] = table
    return profiles


def render_collapsed(folded: dict[str, int]) -> str:
    """Collapsed-stack text: ``frame;frame;leaf count`` per line."""
    lines = [f"{stack} {count}" for stack, count in sorted(folded.items())]
    return "\n".join(lines) + ("\n" if lines else "")


def export_speedscope(
    profiles: dict[int, dict[str, int]],
    hz: int,
    name: str = "repro",
) -> dict[str, Any]:
    """Speedscope sampled-profile JSON, one profile per pid.

    Weights are seconds (``count / hz``); frames are shared across
    profiles per the schema.
    """
    frames: list[dict[str, str]] = []
    frame_index: dict[str, int] = {}
    docs: list[dict[str, Any]] = []
    for pid in sorted(profiles):
        samples: list[list[int]] = []
        weights: list[float] = []
        total = 0.0
        for stack_str, count in sorted(profiles[pid].items()):
            idxs = []
            for frame in stack_str.split(";"):
                if frame not in frame_index:
                    frame_index[frame] = len(frames)
                    frames.append({"name": frame})
                idxs.append(frame_index[frame])
            weight = count / float(hz)
            samples.append(idxs)
            weights.append(weight)
            total += weight
        docs.append(
            {
                "type": "sampled",
                "name": f"{name} pid={pid}",
                "unit": "seconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        )
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "exporter": "repro.obs.profile",
        "shared": {"frames": frames},
        "profiles": docs,
    }


def validate_speedscope(doc: Any) -> list[str]:
    """Structural checks on a speedscope document; [] when valid."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("$schema") != "https://www.speedscope.app/file-format-schema.json":
        problems.append("missing or wrong $schema")
    shared = doc.get("shared")
    if not isinstance(shared, dict) or not isinstance(shared.get("frames"), list):
        problems.append("shared.frames is not a list")
        return problems
    frames = shared["frames"]
    for i, frame in enumerate(frames):
        if not isinstance(frame, dict) or not isinstance(frame.get("name"), str):
            problems.append(f"frame {i} has no name")
            break
    profiles = doc.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        problems.append("profiles is empty or missing")
        return problems
    for p, prof in enumerate(profiles):
        where = f"profile {p}"
        if not isinstance(prof, dict):
            problems.append(f"{where} is not an object")
            continue
        if prof.get("type") != "sampled":
            problems.append(f"{where} is not type 'sampled'")
            continue
        samples = prof.get("samples")
        weights = prof.get("weights")
        if not isinstance(samples, list) or not isinstance(weights, list):
            problems.append(f"{where} lacks samples/weights lists")
            continue
        if len(samples) != len(weights):
            problems.append(
                f"{where} has {len(samples)} samples but "
                f"{len(weights)} weights"
            )
        for s, stack in enumerate(samples):
            if not isinstance(stack, list) or not all(
                isinstance(i, int) and 0 <= i < len(frames) for i in stack
            ):
                problems.append(
                    f"{where} sample {s} has out-of-range frame indices"
                )
                break
        if any(
            not isinstance(w, (int, float)) or w < 0
            for w in weights
        ):
            problems.append(f"{where} has negative or non-numeric weights")
    return problems


def validate_speedscope_file(path: str) -> list[str]:
    """Load ``path`` as JSON and validate; IO/parse errors become
    problems rather than exceptions (smoke-script convenience)."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        return [f"cannot load {path}: {exc}"]
    return validate_speedscope(doc)
