"""Prometheus text-format exposition of the collector's metrics.

Two consumers:

* **one-shot** — ``repro obs export FILE --format prom`` renders a
  journal or trace file's counters/gauges/histograms as Prometheus
  text (version 0.0.4), for piping into pushgateways or diffing runs;
* **live** — ``--metrics-port N`` on any subcommand starts a
  :class:`MetricsServer` (stdlib ``http.server`` on a daemon thread)
  whose ``/metrics`` endpoint renders the *global* collector on every
  scrape, so external scrapers can watch a multi-hour sweep's counters
  climb in real time.

Mapping: ``repro.obs`` counters become Prometheus counters, gauges
become gauges, and the streaming log-bucket histograms become native
Prometheus histograms — each sparse ``BASE**i`` bucket contributes a
cumulative ``_bucket{le="BASE**(i+1)"}`` sample (the zero-slot counts
under every bound), plus exact ``_sum`` and ``_count``.  Metric names
are sanitized to ``repro_<name>`` with non-alphanumerics folded to
``_`` (``sweep.cache.hits`` → ``repro_sweep_cache_hits``).

Thread-safety: a scrape reads the collector's dicts while the
orchestration thread mutates them.  CPython dict reads are atomic
enough for monitoring (a scrape may observe a counter mid-batch but
never a corrupt value); the collector stays single-writer.
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.obs.core import Histogram, Observability

__all__ = [
    "prom_name",
    "render_prometheus",
    "MetricsServer",
    "add_scrape_hook",
    "clear_scrape_hooks",
    "run_scrape_hooks",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def prom_name(name: str, prefix: str = "repro") -> str:
    """A ``repro.obs`` metric name as a valid Prometheus metric name."""
    cleaned = _NAME_RE.sub("_", name).strip("_")
    full = f"{prefix}_{cleaned}" if prefix else cleaned
    if full and full[0].isdigit():
        full = "_" + full
    return full


def _fmt(value: float) -> str:
    """A float in Prometheus exposition syntax (no exponent surprises)."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _histogram_lines(
    name: str, hist: Histogram, exemplars: bool = False
) -> list[str]:
    lines = [f"# TYPE {name} histogram"]
    cumulative = hist.zeros
    for idx in sorted(hist.buckets):
        cumulative += hist.buckets[idx]
        le = Histogram.BASE ** (idx + 1)
        line = f'{name}_bucket{{le="{_fmt(le)}"}} {cumulative}'
        if exemplars and idx in hist.exemplars:
            trace_id, value = hist.exemplars[idx]
            line += f' # {{trace_id="{trace_id}"}} {_fmt(value)}'
        lines.append(line)
    lines.append(f'{name}_bucket{{le="+Inf"}} {hist.count}')
    lines.append(f"{name}_sum {_fmt(hist.total)}")
    lines.append(f"{name}_count {hist.count}")
    return lines


def render_prometheus(
    obs: Observability | None = None, exemplars: bool = False
) -> str:
    """The collector's metrics in Prometheus text format (0.0.4).

    Renders the global collector when ``obs`` is ``None``.  Output is
    sorted by metric name, ends with a newline, and is valid even for an
    empty collector (zero metric families).

    ``exemplars=True`` appends OpenMetrics-style exemplar suffixes
    (``# {trace_id="..."} value``) to histogram bucket lines that have
    one — linking a latency bucket back to a concrete distributed
    trace.  Off by default: the suffix is an OpenMetrics extension and
    plain 0.0.4 text parsers (including this repo's smoke scripts) do
    not expect it.
    """
    from repro.obs import core

    target = obs if obs is not None else core.get()
    lines: list[str] = []
    for name in sorted(target.counters):
        metric = prom_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {target.counters[name]}")
    for name in sorted(target.gauges):
        metric = prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(target.gauges[name])}")
    for name in sorted(target.histograms):
        lines.extend(
            _histogram_lines(
                prom_name(name), target.histograms[name], exemplars
            )
        )
    return "\n".join(lines) + "\n" if lines else "\n"


# ----------------------------------------------------------------------
# Scrape hooks
# ----------------------------------------------------------------------

_SCRAPE_HOOKS: list[Callable[[], None]] = []


def add_scrape_hook(hook: Callable[[], None]) -> None:
    """Register a callable to run before every ``/metrics`` scrape.

    Hooks refresh *derived* gauges whose sources live outside the
    collector — e.g. cache occupancy published by
    :func:`repro.runtime.parallel.publish_cache_gauges`, which would
    otherwise be a stale one-shot snapshot from whenever the last sweep
    finished.  Hook exceptions are swallowed: a broken refresher must
    not take the metrics endpoint down with it.
    """
    _SCRAPE_HOOKS.append(hook)


def clear_scrape_hooks() -> None:
    """Drop all registered scrape hooks (test isolation)."""
    _SCRAPE_HOOKS.clear()


def run_scrape_hooks() -> None:
    """Run the registered hooks, ignoring individual failures."""
    for hook in list(_SCRAPE_HOOKS):
        try:
            hook()
        except Exception:
            pass


class _MetricsHandler(BaseHTTPRequestHandler):
    """Serves ``/metrics`` from the server's bound collector."""

    server: "_MetricsHTTPServer"

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        path, _, query = self.path.partition("?")
        if path not in ("/metrics", "/"):
            self.send_error(404, "only /metrics is served")
            return
        if self.server.obs_target is None:
            # Serving the live global collector: refresh derived gauges
            # so every scrape sees current cache occupancy, not the
            # one-shot snapshot from the last sweep.
            try:
                from repro.runtime.parallel import publish_cache_gauges

                publish_cache_gauges()
            except Exception:
                pass
            run_scrape_hooks()
        want_exemplars = "exemplars=1" in query.split("&") or (
            "application/openmetrics-text"
            in self.headers.get("Accept", "")
        )
        body = render_prometheus(
            self.server.obs_target, exemplars=want_exemplars
        ).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", PROM_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Scrapes are routine; keep them off stderr."""


class _MetricsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # Rebinding a fixed port right after a previous cycle's close must
    # not raise EADDRINUSE while the old socket lingers in TIME_WAIT —
    # serve tests and parallel CI jobs start/stop endpoints repeatedly
    # in one process.  (HTTPServer sets this too; pinned here so the
    # lifecycle guarantee does not hinge on stdlib defaults.)
    allow_reuse_address = True
    obs_target: Observability | None = None


class MetricsServer:
    """A background ``/metrics`` endpoint over a collector.

    ``port=0`` binds an ephemeral port; after :meth:`start`, :attr:`port`
    and :attr:`url` report the *actual* bound port (and keep reporting it
    after :meth:`stop`, so "where was it serving" survives the lifecycle
    — tests and parallel CI jobs depend on both).  ``obs=None`` serves
    the *global* collector, re-rendered per scrape.  The serving thread
    is a daemon: a hard kill of the main process never hangs on it.

    The start/stop cycle is re-entrant: ``start`` on a running server is
    a no-op (the first endpoint keeps serving — it does not leak a
    second socket/thread), and ``start`` after ``stop`` binds afresh
    (re-resolving port 0 to a new ephemeral port).
    """

    def __init__(
        self,
        port: int,
        host: str = "127.0.0.1",
        obs: Observability | None = None,
    ) -> None:
        self._requested = (host, port)
        self._obs = obs
        self._httpd: _MetricsHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._bound_port = port

    @property
    def running(self) -> bool:
        """True while the endpoint is serving."""
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The actual bound port (the last bound one after ``stop``;
        the requested port — possibly 0 — before the first ``start``)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._bound_port

    @property
    def url(self) -> str:
        return f"http://{self._requested[0]}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        """Bind and start serving in a daemon thread; returns self.

        Idempotent: a second ``start`` on a running server returns self
        without binding another socket.
        """
        if self._httpd is not None:
            return self
        httpd = _MetricsHTTPServer(self._requested, _MetricsHandler)
        httpd.obs_target = self._obs
        self._httpd = httpd
        self._bound_port = httpd.server_address[1]
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the endpoint down and join the serving thread.

        Idempotent; the bound port stays readable afterwards, and a
        later ``start`` binds a fresh socket (so start/stop cycles in
        one process never trip over a half-closed predecessor).
        """
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
