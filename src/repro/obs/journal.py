"""The crash-safe event journal: live telemetry that survives ``kill -9``.

``--trace FILE`` serializes the collector *at exit* — a sweep killed at
minute 50 of 60 leaves nothing.  The journal is the online counterpart:
an append-as-you-go JSONL spool that records every observability event
(span open/close, attached worker span trees, counter increments, gauge
writes, histogram samples, warnings, worker heartbeats) the moment it
happens, with batched ``fsync`` so a hard kill loses at most the last
unsynced batch — and :func:`replay_journal` reconstructs a valid trace
document (the same shape ``export_json`` writes, loadable by
``export_chrome``) from whatever made it to disk.

Record format: one JSON object per line, ``{"kind": ..., "t": ...,
**fields}``, where ``t`` is seconds since the journal's own monotonic
epoch (the journal is self-consistent even though it cannot share an
epoch with a previous process).  The first record is ``journal_open``
(schema version, pid, wall-clock timestamp); a clean shutdown appends
``journal_close``.  A journal whose final line is torn mid-write (the
``kill -9`` case) replays fine: the torn tail is dropped, and any spans
still open at end-of-journal are closed with their last-known duration
and an ``aborted: true`` attribute — so the recovered trace passes
``validate_trace`` and renders in Perfetto with the crash point visible.

Durability model: records are buffered and the file is ``fsync``ed
every :data:`Journal.SYNC_EVERY` records or :data:`Journal.SYNC_SECONDS`
seconds, whichever comes first; warnings and lifecycle records sync
immediately (operational problems must not be lost to the batch).
"""

from __future__ import annotations

import io
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs.core import Histogram, Observability, Span

__all__ = [
    "JOURNAL_VERSION",
    "Journal",
    "Replay",
    "replay_journal",
    "observability_from_trace",
]

JOURNAL_VERSION = 1


class Journal:
    """An append-as-you-go JSONL event spool with batched fsync.

    Attach one to the collector (``obs.get().journal = Journal(path)``,
    or let the CLI's ``--journal FILE`` do it) and every span, counter,
    gauge, histogram sample and warning is spooled as it happens.  The
    journal also quacks as a sweep-monitor listener (`on_heartbeat` /
    ``on_shard_done``), so worker heartbeats land in the same stream.
    """

    SYNC_EVERY = 64
    """Records between forced fsyncs (batching amortizes the syscall)."""

    SYNC_SECONDS = 0.25
    """Maximum age of an unsynced record."""

    #: Kinds that bypass batching: losing these to a crash would defeat
    #: the journal's purpose (lifecycle markers, operational warnings).
    SYNC_KINDS = frozenset({"journal_open", "journal_close", "warning"})

    def __init__(self, path: str) -> None:
        self.path = path
        # Line-buffered: every record reaches the OS as soon as it is
        # written, so a forked pool worker never inherits half-written
        # journal bytes to duplicate at interpreter exit (fsync stays
        # batched — the buffering policy governs *durability*, not
        # *who owns the bytes*).
        self._f: io.TextIOWrapper | None = open(path, "w", buffering=1)
        self._pid = os.getpid()
        self._epoch = time.perf_counter()
        self._unsynced = 0
        self._last_sync = self._epoch
        self.records_written = 0
        open_fields: dict[str, Any] = {
            "version": JOURNAL_VERSION,
            "pid": os.getpid(),
            "wall_time": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
        }
        # Stamp the ambient trace context (if any) so a journal can be
        # matched to the distributed trace that produced it.
        from repro.obs import context as _trace_context

        ctx = _trace_context.current()
        if ctx is not None and ctx.sampled:
            open_fields["trace_id"] = ctx.trace_id
            if ctx.span_id:
                open_fields["span_id"] = ctx.span_id
        self.record("journal_open", **open_fields)

    @property
    def closed(self) -> bool:
        return self._f is None

    def now(self) -> float:
        """Seconds since this journal's epoch."""
        return time.perf_counter() - self._epoch

    def record(self, kind: str, **fields: Any) -> None:
        """Append one event; flush/fsync per the batching policy.

        Only the process that opened the journal may write: a *forked*
        pool worker inherits the attached journal (same file offset!),
        and concurrent writers would interleave records from unrelated
        span stacks.  Worker-side telemetry travels home through
        :class:`ShardMeta` and the heartbeat queue instead, so dropping
        a foreign-pid record loses nothing.
        """
        if self._f is None or os.getpid() != self._pid:
            return
        doc = {"kind": kind, "t": round(self.now(), 6)}
        doc.update(fields)
        self._f.write(json.dumps(doc, default=repr) + "\n")
        self.records_written += 1
        self._unsynced += 1
        now = time.perf_counter()
        if (
            kind in self.SYNC_KINDS
            or self._unsynced >= self.SYNC_EVERY
            or now - self._last_sync >= self.SYNC_SECONDS
        ):
            self.sync()

    def sync(self) -> None:
        """Flush buffered records to the OS and fsync the file."""
        if self._f is None:
            return
        self._f.flush()
        try:
            os.fsync(self._f.fileno())
        except OSError:  # e.g. the path is a pipe; flushed is the best we get
            pass
        self._unsynced = 0
        self._last_sync = time.perf_counter()

    def close(self) -> None:
        """Write the ``journal_close`` marker and release the file."""
        if self._f is None:
            return
        self.record("journal_close")
        f, self._f = self._f, None
        f.close()

    # ------------------------------------------------------------------
    # Sweep-monitor listener protocol (see repro.runtime.parallel)
    # ------------------------------------------------------------------

    def on_sweep_start(self, label: str, shards: int, jobs: int) -> None:
        self.record("sweep_start", label=label, shards=shards, jobs=jobs)

    def on_heartbeat(self, hb: dict) -> None:
        self.record("heartbeat", **hb)

    def on_shard_done(self, meta: dict) -> None:
        self.record("shard_done", **meta)

    def on_sweep_done(self, label: str, wall_seconds: float) -> None:
        self.record(
            "sweep_done", label=label, wall_seconds=round(wall_seconds, 6)
        )


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------


@dataclass
class Replay:
    """The result of replaying a journal: a collector plus provenance.

    ``obs`` holds the reconstructed spans/counters/gauges/histograms/
    events, ready for ``export_json(replay.obs)`` or
    ``export_chrome(replay.obs)``.  ``aborted`` names every span that was
    still open at end-of-journal (each is closed in the trace with
    ``attrs["aborted"] = true``); ``dropped`` counts undecodable lines
    (a torn final record after ``kill -9`` is the expected case);
    ``clean`` is True iff the journal ends with ``journal_close``.
    """

    obs: Observability
    records: int = 0
    dropped: int = 0
    aborted: list[str] = field(default_factory=list)
    clean: bool = False

    def to_trace_dict(self) -> dict:
        """The reconstructed trace document (``validate_trace`` shape)."""
        return self.obs.to_dict()


def _close_span(sp: Span, open_t: float, t: float, attrs: dict | None) -> None:
    if attrs:
        sp.attrs.update(attrs)
    sp.duration = max(0.0, t - open_t)


def replay_journal(path: str) -> Replay:
    """Reconstruct a trace from a journal, tolerating a torn tail.

    Span open/close records follow stack discipline (the collector is
    single-threaded), so the tree rebuilds from a stack; ``attach``
    records graft worker-built span trees under the currently open span
    exactly as the live collector did.  Counter/gauge/observe records
    replay into the collector's registries, warnings and heartbeats into
    its event list.  Any line that does not parse as JSON is dropped —
    only a crash can produce one, and only as the final line; dangling
    spans are closed at the last event time with ``aborted: true``.
    """
    obs = Observability()
    # Recording straight into a private collector: enabled so the
    # mutation helpers work, but never installed globally.
    obs.enable()
    stack: list[tuple[Span, float]] = []  # (span, open time)
    replay = Replay(obs=obs)
    last_t = 0.0
    with open(path, "rb") as f:
        raw = f.read()
    for line in raw.splitlines():
        if not line.strip():
            continue
        try:
            rec = json.loads(line.decode("utf-8", errors="strict"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            replay.dropped += 1
            continue
        if not isinstance(rec, dict) or not isinstance(rec.get("kind"), str):
            replay.dropped += 1
            continue
        replay.records += 1
        kind = rec["kind"]
        t = rec.get("t", last_t)
        if isinstance(t, (int, float)) and not isinstance(t, bool):
            last_t = max(last_t, float(t))
        if kind == "span_open":
            sp = Span(
                name=str(rec.get("name", "?")),
                attrs=dict(rec.get("attrs", {})),
                start=float(t),
            )
            parent = stack[-1][0] if stack else None
            (parent.children if parent is not None else obs.roots).append(sp)
            stack.append((sp, float(t)))
        elif kind == "span_close":
            if stack:
                sp, open_t = stack.pop()
                _close_span(sp, open_t, last_t, rec.get("attrs"))
                dur = rec.get("duration")
                if isinstance(dur, (int, float)) and not isinstance(dur, bool):
                    sp.duration = max(0.0, float(dur))
        elif kind == "attach":
            doc = rec.get("span")
            if isinstance(doc, dict):
                try:
                    sp = Span.from_dict(doc)
                except (KeyError, TypeError):
                    replay.dropped += 1
                    continue
                parent = stack[-1][0] if stack else None
                target = parent.children if parent is not None else obs.roots
                target.append(sp)
        elif kind == "counter":
            name, delta = rec.get("name"), rec.get("delta", 1)
            if isinstance(name, str) and isinstance(delta, int) and delta >= 0:
                obs.add(name, delta)
        elif kind == "gauge":
            name, value = rec.get("name"), rec.get("value")
            if isinstance(name, str) and isinstance(value, (int, float)):
                obs.set_gauge(name, value)
        elif kind == "observe":
            name, value = rec.get("name"), rec.get("value")
            if isinstance(name, str) and isinstance(value, (int, float)):
                obs.observe(name, value)
        elif kind == "histogram":
            # A pre-aggregated histogram (worker telemetry merged late).
            name, doc = rec.get("name"), rec.get("data")
            if isinstance(name, str) and isinstance(doc, dict):
                try:
                    obs.merge_histogram(name, Histogram.from_dict(doc))
                except (KeyError, TypeError, ValueError):
                    replay.dropped += 1
        elif kind == "warning":
            obs.events.append(
                {
                    "kind": "warning",
                    "message": rec.get("message", ""),
                    "attrs": rec.get("attrs", {}),
                    "t": t,
                }
            )
        elif kind == "journal_close":
            replay.clean = True
        elif kind == "journal_open":
            replay.clean = False
        else:
            # heartbeat / sweep_start / shard_done / sweep_done / future
            # kinds: structured events, preserved verbatim.
            ev = dict(rec)
            ev.setdefault("t", t)
            obs.events.append(ev)
    # Anything still open when the journal ends was killed mid-span.
    while stack:
        sp, open_t = stack.pop()
        _close_span(sp, open_t, last_t, {"aborted": True})
        replay.aborted.append(sp.name)
    obs.disable()
    return replay


def observability_from_trace(doc: dict) -> Observability:
    """Rebuild a collector from an ``export_json`` trace document.

    The inverse of :meth:`Observability.to_dict` — lets offline tooling
    (``repro obs export``) re-render an already-exported trace in
    another format (Prometheus text, Chrome events, text profile).
    """
    obs = Observability()
    obs.enable()
    for sp in doc.get("spans", ()):
        obs.roots.append(Span.from_dict(sp))
    for name, value in doc.get("counters", {}).items():
        obs.add(name, int(value))
    for name, value in doc.get("gauges", {}).items():
        obs.set_gauge(name, float(value))
    for name, h in doc.get("histograms", {}).items():
        obs.merge_histogram(name, Histogram.from_dict(h))
    obs.events.extend(doc.get("events", ()))
    obs.disable()
    return obs
