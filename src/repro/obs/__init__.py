"""``repro.obs`` — structured tracing, metrics, and cache telemetry.

A dependency-light observability layer for the sweep/executor stack:
span-based tracing with nested timings, monotonic counters, gauges,
streaming log-bucket histograms, tracemalloc memory spans, and
structured warning events, exportable as JSON (``--trace FILE``), as a
Chrome trace-event document Perfetto can load (``--trace-format
chrome``), or as a text profile (``--profile``).  See
:mod:`repro.obs.core` for the model, :mod:`repro.obs.export` for the
document formats, and :mod:`repro.obs.ledger` for the persistent
benchmark ledger behind ``repro bench``.

Typical library use::

    from repro import obs

    with obs.span("my-analysis", nodes=comp.num_nodes):
        obs.add("my.counter")
        obs.observe("my.seconds", dt)
        ...

Everything is a no-op (one boolean check) until :func:`enable` is
called, so instrumented hot paths cost nothing in normal runs.  Memory
attribution (:func:`mem_span`) is additionally gated behind
``REPRO_MEM=1`` / the CLI ``--mem`` flag because tracemalloc costs real
time.
"""

from repro.obs import context, profile
from repro.obs.context import TraceContext, parse_traceparent
from repro.obs.core import (
    NULL_SPAN,
    Histogram,
    Observability,
    Span,
    WarningLimiter,
    add,
    attach,
    counters,
    disable,
    disable_memory,
    enable,
    enable_memory,
    enabled,
    gauges,
    get,
    get_journal,
    histograms,
    mem_enabled,
    mem_span,
    memory_delta,
    now,
    observe,
    reset,
    set_gauge,
    set_journal,
    span,
    warning,
)
from repro.obs.export import (
    export_chrome,
    export_json,
    iter_trace_spans,
    render_text,
    validate_chrome_trace,
    validate_trace,
)
from repro.obs.journal import (
    Journal,
    Replay,
    observability_from_trace,
    replay_journal,
)
from repro.obs.live import LiveBoard
from repro.obs.metrics import MetricsServer, render_prometheus
from repro.obs.profile import SamplingProfiler, validate_speedscope

__all__ = [
    "Span",
    "Histogram",
    "Observability",
    "WarningLimiter",
    "NULL_SPAN",
    "context",
    "TraceContext",
    "parse_traceparent",
    "profile",
    "SamplingProfiler",
    "validate_speedscope",
    "enabled",
    "enable",
    "disable",
    "reset",
    "span",
    "mem_span",
    "attach",
    "add",
    "observe",
    "set_gauge",
    "warning",
    "counters",
    "gauges",
    "histograms",
    "get",
    "now",
    "mem_enabled",
    "enable_memory",
    "disable_memory",
    "memory_delta",
    "export_json",
    "export_chrome",
    "render_text",
    "validate_trace",
    "validate_chrome_trace",
    "iter_trace_spans",
    "Journal",
    "Replay",
    "replay_journal",
    "observability_from_trace",
    "set_journal",
    "get_journal",
    "LiveBoard",
    "MetricsServer",
    "render_prometheus",
]
