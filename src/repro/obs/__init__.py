"""``repro.obs`` — structured tracing, metrics, and cache telemetry.

A dependency-light observability layer for the sweep/executor stack:
span-based tracing with nested timings, monotonic counters, gauges, and
structured warning events, exportable as JSON (``--trace FILE``) or a
text profile (``--profile``).  See :mod:`repro.obs.core` for the model
and :mod:`repro.obs.export` for the document format.

Typical library use::

    from repro import obs

    with obs.span("my-analysis", nodes=comp.num_nodes):
        obs.add("my.counter")
        ...

Everything is a no-op (one boolean check) until :func:`enable` is
called, so instrumented hot paths cost nothing in normal runs.
"""

from repro.obs.core import (
    NULL_SPAN,
    Observability,
    Span,
    add,
    attach,
    counters,
    disable,
    enable,
    enabled,
    gauges,
    get,
    now,
    reset,
    set_gauge,
    span,
    warning,
)
from repro.obs.export import (
    export_json,
    iter_trace_spans,
    render_text,
    validate_trace,
)

__all__ = [
    "Span",
    "Observability",
    "NULL_SPAN",
    "enabled",
    "enable",
    "disable",
    "reset",
    "span",
    "attach",
    "add",
    "set_gauge",
    "warning",
    "counters",
    "gauges",
    "get",
    "now",
    "export_json",
    "render_text",
    "validate_trace",
    "iter_trace_spans",
]
