"""Trace export, rendering, and shape validation.

The JSON document written by ``repro ... --trace FILE`` is
:meth:`repro.obs.core.Observability.to_dict`:

.. code-block:: json

    {
      "version": 1,
      "spans":    [{"name", "attrs", "start", "duration", "children"}],
      "counters": {"sweep.pairs": 4734, ...},
      "gauges":   {"sweep.wall_seconds": 0.42, ...},
      "histograms": {"sweep.shard_seconds": {"count", "sum", "buckets", ...}},
      "events":   [{"kind": "warning", "message", "attrs", "t"}]
    }

:func:`validate_trace` checks that shape (CI gates on it);
:func:`render_text` is the human-readable profile the ``--profile``
flag prints.

``--trace-format chrome`` instead writes the Chrome trace-event format
(:func:`export_chrome`): a ``{"traceEvents": [...]}`` document loadable
by ``ui.perfetto.dev`` or ``chrome://tracing``.  Spans become complete
(``"ph": "X"``) events; spans reconstructed from worker-process
telemetry (they carry a ``pid`` attribute — e.g. the sweep engine's
``shard`` spans) are assigned to that worker's process track, so a
multi-worker sweep renders as parallel per-worker timelines.
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from repro.obs.core import Observability, Span

__all__ = [
    "export_json",
    "export_chrome",
    "render_text",
    "validate_trace",
    "validate_chrome_trace",
    "iter_trace_spans",
]

MAIN_PID = 1
"""Synthetic pid of the orchestration process in Chrome exports (worker
spans use their real OS pid, which never collides with 1)."""

TRACK_PID_BASE = 100_000
"""Synthetic pids for named tracks (spans carrying a string ``track``
attribute, e.g. the memory hierarchy's per-(processor, level) tracks)
are allocated upward from here — far above any real OS pid."""


def export_json(obs: Observability | None = None, indent: int | None = 2) -> str:
    """The collector state as a JSON string (global collector by default)."""
    from repro.obs import core

    target = obs if obs is not None else core.get()
    return json.dumps(target.to_dict(), indent=indent, default=repr)


def _safe_args(attrs: dict) -> dict:
    """Attrs restricted to JSON scalars (nested dicts pass through)."""
    return {
        k: v
        for k, v in attrs.items()
        if isinstance(v, (str, int, float, bool, dict)) or v is None
    }


def _chrome_span_events(
    sp: Span,
    ts_us: float,
    pid: int,
    tid: int,
    cursors: dict[int, float],
    events: list[dict],
    tracks: dict[str, int],
) -> None:
    """Emit one span (and its subtree) as complete events.

    ``ts_us`` is where this span starts on its track.  Live spans carry
    their own collector-epoch ``start``; spans reconstructed from worker
    telemetry (``start == 0.0`` with a ``pid`` attribute) have no
    cross-process clock, so they are laid head-to-tail on their worker's
    track via ``cursors`` — durations are real, offsets are schematic.
    Hand-built spans naming a string ``track`` attribute get a stable
    synthetic pid per track name (``tracks`` registry), so subsystems
    like the memory hierarchy render one Perfetto process track per
    (processor, level).
    """
    dur_us = max(sp.duration * 1e6, 1.0)
    events.append(
        {
            "name": sp.name,
            "cat": "span",
            "ph": "X",
            "ts": round(ts_us, 3),
            "dur": round(dur_us, 3),
            "pid": pid,
            "tid": tid,
            "args": _safe_args(sp.attrs),
        }
    )
    child_cursor = ts_us
    for child in sp.children:
        worker_pid = child.attrs.get("pid")
        track = child.attrs.get("track")
        if child.start == 0.0 and isinstance(track, str) and track:
            track_pid = tracks.setdefault(track, TRACK_PID_BASE + len(tracks))
            start = max(cursors.get(track_pid, 0.0), ts_us)
            _chrome_span_events(
                child, start, track_pid, 1, cursors, events, tracks
            )
            cursors[track_pid] = start + max(child.duration * 1e6, 1.0)
        elif child.start == 0.0 and isinstance(worker_pid, int) and worker_pid:
            # Worker-reconstructed span: its own process track, shards
            # laid sequentially from this span's start.
            start = max(cursors.get(worker_pid, 0.0), ts_us)
            _chrome_span_events(
                child, start, worker_pid, 1, cursors, events, tracks
            )
            cursors[worker_pid] = start + max(child.duration * 1e6, 1.0)
        elif child.start > 0.0:
            _chrome_span_events(
                child, child.start * 1e6, pid, tid, cursors, events, tracks
            )
        else:
            # Hand-built span without a worker pid: sequential layout
            # inside the parent on the parent's track.
            _chrome_span_events(
                child, child_cursor, pid, tid, cursors, events, tracks
            )
            child_cursor += max(child.duration * 1e6, 1.0)


def _flow_events(events: list[dict]) -> list[dict]:
    """Flow arrows stitching cross-process request traces together.

    Spans annotated by the trace-context layer carry ``span_id`` /
    ``parent_span_id`` args.  When a child span landed on a *different*
    pid track than its parent (the serve/sweep pool-worker case, where
    worker clocks are schematic), Perfetto has no visual link between
    them — so emit a flow-start (``"s"``) on the parent and a
    flow-finish (``"f"``, binding to the enclosing slice) on the child,
    sharing an id.  Same-pid links are skipped: there the span tree
    already nests.  Must run before the global timestamp sort so the
    exporter's monotonicity guarantee holds.
    """
    by_span: dict[str, dict] = {}
    for ev in events:
        if ev.get("ph") != "X":
            continue
        sid = ev.get("args", {}).get("span_id")
        if isinstance(sid, str) and sid:
            by_span[sid] = ev
    flows: list[dict] = []
    flow_id = 0
    for ev in events:
        if ev.get("ph") != "X":
            continue
        args = ev.get("args", {})
        parent_sid = args.get("parent_span_id")
        if not isinstance(parent_sid, str) or not parent_sid:
            continue
        src = by_span.get(parent_sid)
        if src is None or src["pid"] == ev["pid"]:
            continue
        if src.get("args", {}).get("trace_id") != args.get("trace_id"):
            continue
        flow_id += 1
        flows.append(
            {
                "name": "trace",
                "cat": "trace",
                "ph": "s",
                "id": flow_id,
                "ts": src["ts"],
                "pid": src["pid"],
                "tid": src["tid"],
                "args": {"trace_id": args.get("trace_id")},
            }
        )
        flows.append(
            {
                "name": "trace",
                "cat": "trace",
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                # Nudged just inside the destination slice so the
                # enclosing-slice binding resolves to it.
                "ts": round(ev["ts"] + 0.001, 3),
                "pid": ev["pid"],
                "tid": ev["tid"],
                "args": {"trace_id": args.get("trace_id")},
            }
        )
    return flows


def export_chrome(obs: Observability | None = None, indent: int | None = None) -> str:
    """The collector state in Chrome trace-event format (Perfetto-loadable).

    Every span becomes a complete (``"ph": "X"``) event.  Spans grafted
    from worker processes render on their own pid track; counters become
    ``"C"`` samples at the end of the trace; warning events become
    global instants (``"ph": "i"``).
    """
    from repro.obs import core

    target = obs if obs is not None else core.get()
    events: list[dict] = []
    cursors: dict[int, float] = {}
    tracks: dict[str, int] = {}
    for root in target.roots:
        _chrome_span_events(
            root, root.start * 1e6, MAIN_PID, 1, cursors, events, tracks
        )
    events.extend(_flow_events(events))
    end_ts = max((e["ts"] + e.get("dur", 0.0) for e in events), default=0.0)
    for ev in target.events:
        events.append(
            {
                "name": f"{ev.get('kind', 'event')}: {ev.get('message', '')}",
                "cat": "event",
                "ph": "i",
                "s": "g",
                "ts": round(ev.get("t", 0.0) * 1e6, 3),
                "pid": MAIN_PID,
                "tid": 1,
                "args": _safe_args(ev.get("attrs", {})),
            }
        )
    for name in sorted(target.counters):
        events.append(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": round(end_ts, 3),
                "pid": MAIN_PID,
                "tid": 1,
                "args": {"value": target.counters[name]},
            }
        )
    events.sort(key=lambda e: e["ts"])
    meta: list[dict] = []
    track_names = {pid: name for name, pid in tracks.items()}
    for pid in sorted({e["pid"] for e in events} | {MAIN_PID}):
        if pid == MAIN_PID:
            label = "repro (parent)"
        elif pid in track_names:
            label = track_names[pid]
        else:
            label = f"worker pid={pid}"
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    doc = {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs",
            "gauges": dict(target.gauges),
            "histograms": {
                k: h.to_dict() for k, h in target.histograms.items()
            },
        },
    }
    return json.dumps(doc, indent=indent, default=repr)


def _render_span(sp: Span, depth: int, lines: list[str]) -> None:
    inline = ", ".join(
        f"{k}={v}"
        for k, v in sp.attrs.items()
        if isinstance(v, (str, int, float, bool))
    )
    label = f"{'  ' * depth}{sp.name}" + (f" [{inline}]" if inline else "")
    lines.append(f"{label:<68} {sp.duration * 1000:>9.2f}ms")
    for child in sp.children:
        _render_span(child, depth + 1, lines)


def render_text(obs: Observability | None = None) -> str:
    """Human-readable profile: the span tree, counters, gauges, events."""
    from repro.obs import core

    target = obs if obs is not None else core.get()
    lines: list[str] = []
    if target.roots:
        lines.append("spans:")
        for root in target.roots:
            _render_span(root, 1, lines)
    if target.counters:
        lines.append("counters:")
        for name in sorted(target.counters):
            lines.append(f"  {name:<50} {target.counters[name]:>12}")
    if target.gauges:
        lines.append("gauges:")
        for name in sorted(target.gauges):
            lines.append(f"  {name:<50} {target.gauges[name]:>12.4f}")
    if target.histograms:
        lines.append("histograms:")
        for name in sorted(target.histograms):
            h = target.histograms[name]
            lines.append(
                f"  {name:<38} n={h.count:<6} p50={h.p50:.4g} "
                f"p90={h.p90:.4g} p99={h.p99:.4g} max={h.max:.4g}"
            )
    if target.events:
        lines.append("events:")
        for ev in target.events:
            lines.append(f"  [{ev.get('kind', '?')}] {ev.get('message', '')}")
    return "\n".join(lines) if lines else "(empty trace)"


def _validate_span(doc: Any, path: str, problems: list[str]) -> None:
    if not isinstance(doc, dict):
        problems.append(f"{path}: span is not an object")
        return
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{path}: missing or empty span name")
    for key in ("start", "duration"):
        v = doc.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
            problems.append(f"{path}: {key} must be a non-negative number")
    if not isinstance(doc.get("attrs", {}), dict):
        problems.append(f"{path}: attrs must be an object")
    children = doc.get("children", [])
    if not isinstance(children, list):
        problems.append(f"{path}: children must be a list")
        return
    for i, child in enumerate(children):
        _validate_span(child, f"{path}.children[{i}]", problems)


def validate_trace(doc: Any) -> list[str]:
    """Structural validation of a trace document; ``[]`` means valid."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["trace document is not a JSON object"]
    if doc.get("version") != 1:
        problems.append("missing or unsupported trace version (expected 1)")
    spans = doc.get("spans")
    if not isinstance(spans, list):
        problems.append("'spans' must be a list")
    else:
        for i, sp in enumerate(spans):
            _validate_span(sp, f"spans[{i}]", problems)
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        problems.append("'counters' must be an object")
    else:
        for name, value in counters.items():
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                problems.append(
                    f"counter {name!r} must be a non-negative integer"
                )
    gauges = doc.get("gauges")
    if not isinstance(gauges, dict):
        problems.append("'gauges' must be an object")
    else:
        for name, value in gauges.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"gauge {name!r} must be a number")
    histograms = doc.get("histograms", {})
    if not isinstance(histograms, dict):
        problems.append("'histograms' must be an object")
    else:
        for name, h in histograms.items():
            problems.extend(_validate_histogram(name, h))
    events = doc.get("events")
    if not isinstance(events, list):
        problems.append("'events' must be a list")
    else:
        for i, ev in enumerate(events):
            if not isinstance(ev, dict) or "kind" not in ev:
                problems.append(f"events[{i}] must be an object with a 'kind'")
    return problems


def _validate_histogram(name: str, h: Any) -> list[str]:
    problems: list[str] = []
    if not isinstance(h, dict):
        return [f"histogram {name!r} must be an object"]
    for key in ("count", "zeros"):
        v = h.get(key)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            problems.append(
                f"histogram {name!r}: {key} must be a non-negative integer"
            )
    for key in ("sum", "min", "max", "p50", "p90", "p99"):
        v = h.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            problems.append(f"histogram {name!r}: {key} must be a number")
    buckets = h.get("buckets")
    if not isinstance(buckets, dict):
        problems.append(f"histogram {name!r}: buckets must be an object")
        return problems
    total = 0
    for idx, n in buckets.items():
        if not isinstance(n, int) or isinstance(n, bool) or n <= 0:
            problems.append(
                f"histogram {name!r}: bucket {idx!r} count must be a "
                "positive integer"
            )
            continue
        try:
            int(idx)
        except (TypeError, ValueError):
            problems.append(
                f"histogram {name!r}: bucket key {idx!r} must be an integer"
            )
        total += n
    if not problems and isinstance(h.get("count"), int):
        if total + h.get("zeros", 0) != h["count"]:
            problems.append(
                f"histogram {name!r}: bucket counts + zeros "
                f"({total} + {h.get('zeros', 0)}) != count ({h['count']})"
            )
    return problems


def validate_chrome_trace(doc: Any) -> list[str]:
    """Structural validation of a Chrome trace-event document.

    Checks the keys every consumer relies on (``ph``/``ts``/``pid``/
    ``tid`` on all events, ``dur`` on complete events), that timestamps
    are non-negative and monotonically non-decreasing in file order, and
    that at least one complete event is present.  ``[]`` means valid.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["chrome trace document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    last_ts = 0.0
    complete = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"traceEvents[{i}]: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                problems.append(f"traceEvents[{i}]: missing {key!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            problems.append(
                f"traceEvents[{i}]: ts must be a non-negative number"
            )
        elif ts < last_ts:
            problems.append(
                f"traceEvents[{i}]: ts {ts} goes backwards (prev {last_ts})"
            )
        else:
            last_ts = ts
        if ev.get("ph") == "X":
            complete += 1
            dur = ev.get("dur")
            if (
                not isinstance(dur, (int, float))
                or isinstance(dur, bool)
                or dur < 0
            ):
                problems.append(
                    f"traceEvents[{i}]: complete event needs non-negative dur"
                )
    if not events:
        problems.append("traceEvents is empty")
    elif complete == 0:
        problems.append("no complete ('X') span events in trace")
    return problems


def iter_trace_spans(doc: dict) -> Iterator[dict]:
    """Every span dict of a trace document, depth-first."""
    stack = list(doc.get("spans", ()))
    while stack:
        sp = stack.pop()
        yield sp
        stack.extend(sp.get("children", ()))
