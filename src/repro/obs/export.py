"""Trace export, rendering, and shape validation.

The JSON document written by ``repro ... --trace FILE`` is
:meth:`repro.obs.core.Observability.to_dict`:

.. code-block:: json

    {
      "version": 1,
      "spans":    [{"name", "attrs", "start", "duration", "children"}],
      "counters": {"sweep.pairs": 4734, ...},
      "gauges":   {"sweep.wall_seconds": 0.42, ...},
      "events":   [{"kind": "warning", "message", "attrs", "t"}]
    }

:func:`validate_trace` checks that shape (CI gates on it);
:func:`render_text` is the human-readable profile the ``--profile``
flag prints.
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from repro.obs.core import Observability, Span

__all__ = [
    "export_json",
    "render_text",
    "validate_trace",
    "iter_trace_spans",
]


def export_json(obs: Observability | None = None, indent: int | None = 2) -> str:
    """The collector state as a JSON string (global collector by default)."""
    from repro.obs import core

    target = obs if obs is not None else core.get()
    return json.dumps(target.to_dict(), indent=indent, default=repr)


def _render_span(sp: Span, depth: int, lines: list[str]) -> None:
    inline = ", ".join(
        f"{k}={v}"
        for k, v in sp.attrs.items()
        if isinstance(v, (str, int, float, bool))
    )
    label = f"{'  ' * depth}{sp.name}" + (f" [{inline}]" if inline else "")
    lines.append(f"{label:<68} {sp.duration * 1000:>9.2f}ms")
    for child in sp.children:
        _render_span(child, depth + 1, lines)


def render_text(obs: Observability | None = None) -> str:
    """Human-readable profile: the span tree, counters, gauges, events."""
    from repro.obs import core

    target = obs if obs is not None else core.get()
    lines: list[str] = []
    if target.roots:
        lines.append("spans:")
        for root in target.roots:
            _render_span(root, 1, lines)
    if target.counters:
        lines.append("counters:")
        for name in sorted(target.counters):
            lines.append(f"  {name:<50} {target.counters[name]:>12}")
    if target.gauges:
        lines.append("gauges:")
        for name in sorted(target.gauges):
            lines.append(f"  {name:<50} {target.gauges[name]:>12.4f}")
    if target.events:
        lines.append("events:")
        for ev in target.events:
            lines.append(f"  [{ev.get('kind', '?')}] {ev.get('message', '')}")
    return "\n".join(lines) if lines else "(empty trace)"


def _validate_span(doc: Any, path: str, problems: list[str]) -> None:
    if not isinstance(doc, dict):
        problems.append(f"{path}: span is not an object")
        return
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{path}: missing or empty span name")
    for key in ("start", "duration"):
        v = doc.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
            problems.append(f"{path}: {key} must be a non-negative number")
    if not isinstance(doc.get("attrs", {}), dict):
        problems.append(f"{path}: attrs must be an object")
    children = doc.get("children", [])
    if not isinstance(children, list):
        problems.append(f"{path}: children must be a list")
        return
    for i, child in enumerate(children):
        _validate_span(child, f"{path}.children[{i}]", problems)


def validate_trace(doc: Any) -> list[str]:
    """Structural validation of a trace document; ``[]`` means valid."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["trace document is not a JSON object"]
    if doc.get("version") != 1:
        problems.append("missing or unsupported trace version (expected 1)")
    spans = doc.get("spans")
    if not isinstance(spans, list):
        problems.append("'spans' must be a list")
    else:
        for i, sp in enumerate(spans):
            _validate_span(sp, f"spans[{i}]", problems)
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        problems.append("'counters' must be an object")
    else:
        for name, value in counters.items():
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                problems.append(
                    f"counter {name!r} must be a non-negative integer"
                )
    gauges = doc.get("gauges")
    if not isinstance(gauges, dict):
        problems.append("'gauges' must be an object")
    else:
        for name, value in gauges.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"gauge {name!r} must be a number")
    events = doc.get("events")
    if not isinstance(events, list):
        problems.append("'events' must be a list")
    else:
        for i, ev in enumerate(events):
            if not isinstance(ev, dict) or "kind" not in ev:
                problems.append(f"events[{i}] must be an object with a 'kind'")
    return problems


def iter_trace_spans(doc: dict) -> Iterator[dict]:
    """Every span dict of a trace document, depth-first."""
    stack = list(doc.get("spans", ()))
    while stack:
        sp = stack.pop()
        yield sp
        stack.extend(sp.get("children", ()))
