"""Propagated trace context: request-scoped ids across process boundaries.

The unit of interest in a long-running service is a *request*, not a
process: one ``POST /check`` item travels HTTP accept → dedupe →
pool-worker checking → verdict streaming, and every telemetry artifact
it touches (spans, heartbeats, journal records, NDJSON verdicts,
histogram exemplars) should carry the same correlation ids.  This
module is the id plumbing — W3C Trace Context shaped, stdlib-only, and
below :mod:`repro.obs.core` in the import graph:

* :class:`TraceContext` — an immutable ``(trace_id, span_id, sampled,
  parent_span_id)`` tuple.  ``trace_id`` names the whole request tree
  (32 hex chars), ``span_id`` the current operation (16 hex chars);
  :meth:`TraceContext.child` mints a fresh span id whose
  ``parent_span_id`` is the parent's span id, which is how the tree
  links rebuild after crossing a fork boundary.
* :func:`parse_traceparent` / :meth:`TraceContext.to_traceparent` —
  the ``00-<trace_id>-<span_id>-<flags>`` wire form (the
  ``traceparent`` HTTP header, the ``"trace"`` JSONL envelope field).
* :func:`mint` — accept an inbound traceparent, else generate a fresh
  context, applying **head sampling**: the sampled bit is decided once
  per request, and every downstream hot path pays exactly one boolean
  check (``ctx.sampled``) when the request was not sampled.
* :func:`current` / :func:`activate` — the ambient context, held in a
  :class:`contextvars.ContextVar` so the serve front-end's executor
  threads and the CLI's main thread each see their own.

Pool workers receive a context as a plain tuple (``as_tuple`` /
``from_tuple``) through picklable channels — :class:`ShardSpec` fields
and ``check_document`` arguments — and re-activate it on their side;
nothing here assumes a shared address space.
"""

from __future__ import annotations

import contextvars
import os
import random
import re
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "TraceContext",
    "parse_traceparent",
    "mint",
    "current",
    "activate",
    "set_current",
]

_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)

_ZERO_TRACE = "0" * 32
_ZERO_SPAN = "0" * 16


def _new_trace_id() -> str:
    return os.urandom(16).hex()


def _new_span_id() -> str:
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """One request's correlation ids (W3C Trace Context shaped).

    ``span_id`` may be empty for a *generated* root context: the request
    has a trace id but no caller span, so the first span opened under it
    records no ``parent_span_id`` (it is the root of the tree).
    """

    trace_id: str
    span_id: str = ""
    sampled: bool = True
    parent_span_id: str = ""

    def child(self) -> "TraceContext":
        """A fresh span id under this context (same trace, same sampling)."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_new_span_id(),
            sampled=self.sampled,
            parent_span_id=self.span_id,
        )

    def to_traceparent(self) -> str:
        """The ``traceparent`` wire form of this context."""
        span = self.span_id or _new_span_id()
        return f"00-{self.trace_id}-{span}-{'01' if self.sampled else '00'}"

    def as_tuple(self) -> tuple[str, str, bool, str]:
        """A picklable form for fork-boundary channels (``initargs``,
        :class:`~repro.runtime.parallel.ShardSpec` fields, pool-task
        arguments)."""
        return (self.trace_id, self.span_id, self.sampled, self.parent_span_id)

    @classmethod
    def from_tuple(cls, data: tuple) -> "TraceContext":
        """Inverse of :meth:`as_tuple` (tolerates the 3-field form)."""
        parent = str(data[3]) if len(data) > 3 else ""
        return cls(
            trace_id=str(data[0]),
            span_id=str(data[1]),
            sampled=bool(data[2]),
            parent_span_id=parent,
        )


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Parse a ``traceparent`` header; ``None`` on anything malformed.

    Accepts the version-00 format ``00-<32 hex>-<16 hex>-<2 hex>``;
    all-zero trace or span ids and the reserved version ``ff`` are
    rejected per the W3C spec.  The returned context's ``span_id`` is
    the *caller's* span — the first local span opened under it becomes
    that caller's child.
    """
    if not header or not isinstance(header, str):
        return None
    m = _TRACEPARENT_RE.match(header.strip().lower())
    if m is None:
        return None
    version, trace_id, span_id, flags = m.groups()
    if version == "ff" or trace_id == _ZERO_TRACE or span_id == _ZERO_SPAN:
        return None
    return TraceContext(
        trace_id=trace_id,
        span_id=span_id,
        sampled=bool(int(flags, 16) & 0x01),
    )


def mint(
    traceparent: str | None = None,
    sample_rate: float = 1.0,
    _rand=random.random,
) -> TraceContext:
    """A context for one inbound request.

    A parseable ``traceparent`` wins outright — trace id, caller span
    id and the caller's sampling decision are all honored, so a sampled
    upstream always gets a stitched trace back.  Otherwise a fresh
    trace id is generated and the head-sampling decision is drawn once
    from ``sample_rate`` (1.0 = always sampled, 0.0 = never); the ids
    exist either way, only the recording work is gated.
    """
    ctx = parse_traceparent(traceparent)
    if ctx is not None:
        return ctx
    if sample_rate >= 1.0:
        sampled = True
    elif sample_rate <= 0.0:
        sampled = False
    else:
        sampled = _rand() < sample_rate
    return TraceContext(trace_id=_new_trace_id(), sampled=sampled)


# ----------------------------------------------------------------------
# The ambient context
# ----------------------------------------------------------------------

_CURRENT: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def current() -> TraceContext | None:
    """The active trace context of this thread/task, if any."""
    return _CURRENT.get()


def set_current(ctx: TraceContext | None) -> None:
    """Install a context without scoping (pool workers: the context
    lives for the whole task, there is no enclosing frame to restore)."""
    _CURRENT.set(ctx)


@contextmanager
def activate(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Scope a context: ``current()`` returns ``ctx`` inside the body.

    ``activate(None)`` deliberately *clears* the ambient context for
    the body — the tool for code that must not inherit a request's ids.
    """
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)
