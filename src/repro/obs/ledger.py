"""The performance ledger: a persistent, append-only benchmark trajectory.

Every ``repro bench`` run appends one schema-validated JSON record per
benchmark to ``BENCH_LEDGER.jsonl``.  A record captures what you need to
compare runs months apart: the git sha and timestamp, the execution
environment (python, platform, core count), noise-robust wall-clock
statistics over N repeats, the process's peak RSS, and the benchmark's
own key counters (pairs swept, nodes analyzed, speedups).

The *gate* (:func:`compare_records`, surfaced as ``repro bench
--compare`` and ``scripts/bench_gate.py``) turns that trajectory into a
CI verdict: a candidate record is compared against the median of the
last K records of the same benchmark, with the median absolute
deviation (MAD) of that history as the noise floor.  A wall-clock
regression must clear *both* the relative threshold (default 25%) and
``max(3 × MAD, 5 ms)`` of absolute wall clock — so neither a noisy
benchmark whose history wobbles by 30% nor a millisecond-scale quick
benchmark riding a scheduler preemption can flap the gate, while a
tight benchmark that doubles fails loudly.

Everything here is dependency-free stdlib; records are one JSON object
per line so the ledger diffs, merges, and greps like a log file.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_LEDGER",
    "NOISE_FLOOR_SECONDS",
    "available_cpus",
    "env_metadata",
    "git_sha",
    "peak_rss_kb",
    "make_record",
    "validate_record",
    "append_records",
    "read_ledger",
    "Delta",
    "GateReport",
    "compare_records",
    "gate_ledger",
]

SCHEMA_VERSION = 1
DEFAULT_LEDGER = "BENCH_LEDGER.jsonl"

DEFAULT_WINDOW = 5
"""How many historical records per benchmark the gate compares against."""

DEFAULT_THRESHOLD = 0.25
"""Relative wall-clock regression that fails the gate (25%)."""

NOISE_FLOOR_SECONDS = 0.005
"""Absolute wall-clock slack below which a delta is never a verdict.

Sub-millisecond quick benchmarks can swing 25% on a single scheduler
preemption; a 3 ms excursion on an 11 ms benchmark is timer noise, not
a regression.  A candidate must beat the baseline by *both* the
relative threshold and this many seconds before the gate moves."""


# ----------------------------------------------------------------------
# Record construction
# ----------------------------------------------------------------------


def git_sha(default: str = "unknown") -> str:
    """The repository HEAD sha, or ``default`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return default
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else default


def available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine's logical CPUs, which
    misattributes pool speedups when the process is pinned to a subset
    (containers, cgroup quotas, ``taskset``) — the classic symptom is a
    ledger full of ``env.cpus: 1`` on a 64-core host, or the reverse.
    The scheduling affinity mask is authoritative where it exists.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # e.g. macOS has no sched_getaffinity
        return os.cpu_count() or 1


def env_metadata() -> dict[str, Any]:
    """The environment block stamped into every ledger record.

    ``cpus`` is the *usable* CPU count (scheduling affinity — what pool
    speedups should be judged against); ``cpus_logical`` records the
    machine's logical CPU count alongside it so a pinned run is visible
    as such in the ledger.  ``kernel`` is the resolved bitset backend
    (``REPRO_KERNEL``) — runs on different backends measure different
    code and the gate refuses to compare across them — with the numpy
    version alongside when that backend is importable.
    """
    meta: dict[str, Any] = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": available_cpus(),
        "cpus_logical": os.cpu_count() or 1,
    }
    # Local import: the ledger predates the kernels package and stays
    # importable on its own (obs.__init__ does not pull it in).
    from repro.kernels import kernel_info

    info = kernel_info()
    meta["kernel"] = info["kernel"]
    if info["numpy"] is not None:
        meta["numpy"] = info["numpy"]
    return meta


def peak_rss_kb() -> int:
    """Peak resident set size of this process in KiB (0 if unavailable)."""
    try:
        import resource
    except ImportError:  # non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return int(rss // 1024) if sys.platform == "darwin" else int(rss)


def _percentile(sorted_vals: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    import math

    if not sorted_vals:
        return 0.0
    rank = max(1, math.ceil(len(sorted_vals) * q / 100.0))
    return sorted_vals[rank - 1]


def make_record(
    benchmark: str,
    wall_seconds: Sequence[float],
    counters: dict[str, Any] | None = None,
    check: bool = True,
    quick: bool = False,
    warmup: int = 0,
    timestamp: float | None = None,
    sha: str | None = None,
    env: dict[str, Any] | None = None,
    rss_kb: int | None = None,
) -> dict[str, Any]:
    """Assemble one schema-valid ledger record from measured repeats.

    ``counters`` is the benchmark's own key-metric dict; non-numeric
    values are dropped (the ledger stores trends, not blobs).
    """
    if not wall_seconds:
        raise ValueError(f"benchmark {benchmark!r}: no wall-clock samples")
    runs = [float(s) for s in wall_seconds]
    ordered = sorted(runs)
    ts = time.time() if timestamp is None else timestamp
    clean_counters = {
        k: v
        for k, v in (counters or {}).items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }
    return {
        "schema": SCHEMA_VERSION,
        "benchmark": benchmark,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(ts)),
        "git_sha": git_sha() if sha is None else sha,
        "env": env_metadata() if env is None else env,
        "quick": bool(quick),
        "warmup": int(warmup),
        "repeats": len(runs),
        "wall_seconds": {
            "p50": round(_percentile(ordered, 50.0), 6),
            "p90": round(_percentile(ordered, 90.0), 6),
            "min": round(ordered[0], 6),
            "max": round(ordered[-1], 6),
            "runs": [round(s, 6) for s in runs],
        },
        "max_rss_kb": peak_rss_kb() if rss_kb is None else int(rss_kb),
        "counters": clean_counters,
        "check": bool(check),
    }


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------


def validate_record(rec: Any) -> list[str]:
    """Structural validation of one ledger record; ``[]`` means valid."""
    problems: list[str] = []
    if not isinstance(rec, dict):
        return ["record is not a JSON object"]
    if rec.get("schema") != SCHEMA_VERSION:
        problems.append(
            f"missing or unsupported schema (expected {SCHEMA_VERSION})"
        )
    name = rec.get("benchmark")
    if not isinstance(name, str) or not name:
        problems.append("'benchmark' must be a non-empty string")
    for key in ("timestamp", "git_sha"):
        if not isinstance(rec.get(key), str) or not rec.get(key):
            problems.append(f"{key!r} must be a non-empty string")
    env = rec.get("env")
    if not isinstance(env, dict):
        problems.append("'env' must be an object")
    else:
        if not isinstance(env.get("python"), str):
            problems.append("'env.python' must be a string")
        cpus = env.get("cpus")
        if not isinstance(cpus, int) or isinstance(cpus, bool) or cpus < 1:
            problems.append("'env.cpus' must be a positive integer")
        # Optional (absent from schema-v1 records written before the
        # affinity fix); validated only when present.
        logical = env.get("cpus_logical")
        if logical is not None and (
            not isinstance(logical, int)
            or isinstance(logical, bool)
            or logical < 1
        ):
            problems.append("'env.cpus_logical' must be a positive integer")
        # Optional likewise (absent before the kernel-backend split);
        # records without it are treated as pure-python by the gate.
        backend = env.get("kernel")
        if backend is not None and (
            not isinstance(backend, str) or not backend
        ):
            problems.append("'env.kernel' must be a non-empty string")
    for key in ("quick", "check"):
        if not isinstance(rec.get(key), bool):
            problems.append(f"{key!r} must be a boolean")
    for key in ("warmup", "repeats", "max_rss_kb"):
        v = rec.get(key)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            problems.append(f"{key!r} must be a non-negative integer")
    if isinstance(rec.get("repeats"), int) and rec.get("repeats", 0) < 1:
        problems.append("'repeats' must be at least 1")
    wall = rec.get("wall_seconds")
    if not isinstance(wall, dict):
        problems.append("'wall_seconds' must be an object")
    else:
        for key in ("p50", "p90", "min", "max"):
            v = wall.get(key)
            if (
                not isinstance(v, (int, float))
                or isinstance(v, bool)
                or v < 0
            ):
                problems.append(
                    f"'wall_seconds.{key}' must be a non-negative number"
                )
        runs = wall.get("runs")
        if not isinstance(runs, list) or not runs:
            problems.append("'wall_seconds.runs' must be a non-empty list")
        elif any(
            not isinstance(s, (int, float)) or isinstance(s, bool) or s < 0
            for s in runs
        ):
            problems.append(
                "'wall_seconds.runs' entries must be non-negative numbers"
            )
    counters = rec.get("counters")
    if not isinstance(counters, dict):
        problems.append("'counters' must be an object")
    else:
        for k, v in counters.items():
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                problems.append(f"counter {k!r} must be a number")
    return problems


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------


def append_records(path: str, records: Iterable[dict]) -> int:
    """Append validated records to a JSONL ledger; returns count written.

    Invalid records raise ``ValueError`` *before* anything is written, so
    a partially-bad batch never corrupts the ledger.
    """
    batch = list(records)
    for rec in batch:
        problems = validate_record(rec)
        if problems:
            raise ValueError(
                f"refusing to append invalid ledger record for "
                f"{rec.get('benchmark')!r}: {'; '.join(problems)}"
            )
    with open(path, "a") as f:
        for rec in batch:
            f.write(json.dumps(rec, sort_keys=True) + "\n")
    return len(batch)


def read_ledger(path: str, strict: bool = False) -> list[dict]:
    """Load a JSONL ledger, oldest first.

    Malformed lines raise ``ValueError`` when ``strict`` else are
    skipped (a ledger that survived merges should not brick the gate).
    """
    records: list[dict] = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{lineno}: not JSON ({exc})"
                    ) from None
                continue
            problems = validate_record(rec)
            if problems:
                if strict:
                    raise ValueError(
                        f"{path}:{lineno}: invalid record: "
                        f"{'; '.join(problems)}"
                    )
                continue
            records.append(rec)
    return records


# ----------------------------------------------------------------------
# The gate
# ----------------------------------------------------------------------


@dataclass
class Delta:
    """One benchmark's gate verdict."""

    benchmark: str
    verdict: str  # "regressed" | "improved" | "flat" | "new"
    candidate_p50: float
    baseline_p50: float | None = None
    mad: float | None = None
    history: int = 0

    @property
    def ratio(self) -> float | None:
        if self.baseline_p50 in (None, 0.0):
            return None
        return self.candidate_p50 / self.baseline_p50


@dataclass
class GateReport:
    """All per-benchmark verdicts of one gate evaluation."""

    deltas: list[Delta] = field(default_factory=list)
    window: int = DEFAULT_WINDOW
    threshold: float = DEFAULT_THRESHOLD

    @property
    def regressions(self) -> list[Delta]:
        return [d for d in self.deltas if d.verdict == "regressed"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self, markdown: bool = False) -> str:
        """The report table (plain text or GitHub-flavored markdown)."""
        header = ("benchmark", "baseline p50", "candidate p50", "Δ", "verdict")
        rows = []
        for d in sorted(self.deltas, key=lambda d: d.benchmark):
            base = "—" if d.baseline_p50 is None else f"{d.baseline_p50:.4f}s"
            ratio = d.ratio
            delta = "—" if ratio is None else f"{(ratio - 1) * 100:+.1f}%"
            rows.append(
                (d.benchmark, base, f"{d.candidate_p50:.4f}s", delta, d.verdict)
            )
        if markdown:
            lines = [
                "| " + " | ".join(header) + " |",
                "|" + "|".join("---" for _ in header) + "|",
            ]
            lines += ["| " + " | ".join(r) + " |" for r in rows]
        else:
            widths = [
                max(len(str(x)) for x in col)
                for col in zip(header, *rows)
            ] if rows else [len(h) for h in header]
            fmt = "  ".join(f"{{:<{w}}}" for w in widths)
            lines = [fmt.format(*header)]
            lines += [fmt.format(*r) for r in rows]
        lines.append("")
        tail = (
            f"gate: {len(self.regressions)} regression(s) out of "
            f"{len(self.deltas)} benchmark(s) "
            f"(window={self.window}, threshold={self.threshold * 100:.0f}%)"
        )
        lines.append(tail)
        return "\n".join(lines)


def _wall_p50(rec: dict) -> float:
    return float(rec["wall_seconds"]["p50"])


def _env_kernel(rec: dict) -> str:
    """A record's kernel backend; records predating the field ran the
    pure-python kernels, so absence defaults to ``"python"``."""
    env = rec.get("env")
    if not isinstance(env, dict):
        return "python"
    kernel = env.get("kernel")
    return kernel if isinstance(kernel, str) and kernel else "python"


def compare_records(
    history: Sequence[dict],
    candidates: Sequence[dict],
    window: int = DEFAULT_WINDOW,
    threshold: float = DEFAULT_THRESHOLD,
) -> GateReport:
    """Noise-aware comparison of candidate records against a history.

    For each candidate benchmark, the baseline is the *median* wall p50
    of the last ``window`` historical records of that benchmark, and the
    noise floor is the MAD of those records.  Verdicts:

    * ``regressed`` — candidate exceeds baseline by more than the
      relative ``threshold`` *and* by more than ``3 × MAD`` *and* by
      more than :data:`NOISE_FLOOR_SECONDS` of absolute wall clock;
    * ``improved`` — symmetric in the other direction;
    * ``flat`` — inside the envelope;
    * ``new`` — no history to compare against.

    Quick-mode and full-mode records measure different workloads, so
    candidates are only compared against history with the same
    ``quick`` flag.  Likewise a record's kernel backend
    (``env.kernel``; records predating the field count as ``python``):
    numbers from the numpy kernels and the pure-python kernels measure
    different code, and comparing across them would let a backend
    switch masquerade as a regression or an optimization — mismatched
    history is simply not a baseline, exactly like the ``cpus`` vs
    ``cpus_logical`` affinity split.
    """
    by_name: dict[str, list[dict]] = {}
    for rec in history:
        by_name.setdefault(rec["benchmark"], []).append(rec)
    report = GateReport(window=window, threshold=threshold)
    for cand in candidates:
        name = cand["benchmark"]
        cand_p50 = _wall_p50(cand)
        prior = [
            r
            for r in by_name.get(name, [])
            if r is not cand
            and r.get("quick") == cand.get("quick")
            and _env_kernel(r) == _env_kernel(cand)
        ][-window:]
        if not prior:
            report.deltas.append(
                Delta(benchmark=name, verdict="new", candidate_p50=cand_p50)
            )
            continue
        p50s = [_wall_p50(r) for r in prior]
        base = statistics.median(p50s)
        mad = statistics.median([abs(x - base) for x in p50s])
        slack = max(3.0 * mad, NOISE_FLOOR_SECONDS)
        if cand_p50 > base * (1.0 + threshold) and cand_p50 > base + slack:
            verdict = "regressed"
        elif cand_p50 < base * (1.0 - threshold) and cand_p50 < base - slack:
            verdict = "improved"
        else:
            verdict = "flat"
        report.deltas.append(
            Delta(
                benchmark=name,
                verdict=verdict,
                candidate_p50=cand_p50,
                baseline_p50=base,
                mad=mad,
                history=len(prior),
            )
        )
    return report


def gate_ledger(
    path: str,
    candidate_path: str | None = None,
    window: int = DEFAULT_WINDOW,
    threshold: float = DEFAULT_THRESHOLD,
) -> GateReport:
    """Gate a ledger file: newest record per benchmark vs its history.

    With ``candidate_path``, every record of that file is a candidate
    and the whole of ``path`` is history (the CI shape: gate a fresh
    run's ledger against the committed trajectory).  Without it, the
    last record of each benchmark in ``path`` is the candidate and the
    earlier records are its history (the local re-run shape).
    """
    history = read_ledger(path)
    if candidate_path is not None:
        candidates = read_ledger(candidate_path)
        return compare_records(history, candidates, window, threshold)
    latest: dict[str, dict] = {}
    for rec in history:
        latest[rec["benchmark"]] = rec
    candidates = list(latest.values())
    prior = [r for r in history if all(r is not c for c in candidates)]
    return compare_records(prior, candidates, window, threshold)
