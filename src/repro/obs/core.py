"""The observability substrate: spans, counters, gauges, events.

Everything in this module is dependency-free stdlib Python, sits below
``runtime``/``verify``/``analysis`` in the import graph, and costs one
boolean check per call site when disabled — hot loops (the BACKER
simulator, the executor, the sweep kernels) may call :func:`add` and
:func:`span` unconditionally.

Model
-----
* A :class:`Span` is a named, timed tree node with free-form JSON
  attributes.  Spans nest: ``with obs.span("sweep"): ...`` opens a span,
  and any span opened inside it becomes a child.  Subsystems that do
  their timing elsewhere (e.g. worker processes returning per-shard
  timings over a pipe) build :class:`Span` trees by hand and graft them
  into the live trace with :func:`attach`.
* **Counters** are monotonic named integers (``obs.add("backer.fetches")``),
  **gauges** are last-write-wins floats.  Both live in a flat global
  registry so totals survive across spans and can be compared against
  per-span attributes.
* **Histograms** (``obs.observe("sweep.shard_seconds", 0.12)``) are
  streaming fixed log-bucket distributions: each sample costs one
  ``math.log`` plus a dict increment, percentiles (p50/p90/p99) read
  back with bounded relative error (:data:`Histogram.BASE`), and two
  histograms merge exactly — so per-shard timings recorded in worker
  processes aggregate losslessly in the parent.
* **Memory spans** (:func:`mem_span`) are ordinary spans that
  additionally attribute ``tracemalloc`` peak and net allocations.
  They are double-gated: off unless the collector is enabled *and*
  memory profiling was requested (``REPRO_MEM=1`` or the CLI's
  ``--mem``), because tracemalloc costs real time on hot paths.
* **Events** are out-of-band structured records (currently warnings).
  :func:`warning` always logs through the stdlib ``repro.obs`` logger —
  even with the collector disabled — so operational problems (a broken
  process pool, a retried shard) are never silent; when the collector is
  enabled the event is additionally recorded in the trace.

The module-level collector is what the CLI's ``--trace``/``--profile``
flags and the library wiring use; tests may construct private
:class:`Observability` instances.

Thread-safety: the collector is designed for the single-threaded
orchestration process (workers are separate *processes* whose telemetry
returns by value); concurrent mutation from threads is not supported.
"""

from __future__ import annotations

import logging
import math
import os
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.obs import context as _trace_context

__all__ = [
    "Span",
    "Histogram",
    "WarningLimiter",
    "Observability",
    "enabled",
    "enable",
    "disable",
    "reset",
    "span",
    "mem_span",
    "attach",
    "add",
    "observe",
    "set_gauge",
    "warning",
    "counters",
    "gauges",
    "histograms",
    "get",
    "now",
    "mem_enabled",
    "enable_memory",
    "disable_memory",
    "memory_delta",
    "set_journal",
    "get_journal",
]

_log = logging.getLogger("repro.obs")


@dataclass
class Span:
    """One named, timed node of the trace tree.

    ``start`` is seconds since the collector's epoch (``reset`` time);
    spans reconstructed from worker-process telemetry use ``start=0.0``
    because worker clocks are not comparable across processes.
    """

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    start: float = 0.0
    duration: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-serializable form (attrs must be JSON-serializable)."""
        return {
            "name": self.name,
            "attrs": self.attrs,
            "start": self.start,
            "duration": self.duration,
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Span":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=doc["name"],
            attrs=dict(doc.get("attrs", {})),
            start=doc.get("start", 0.0),
            duration=doc.get("duration", 0.0),
            children=[cls.from_dict(c) for c in doc.get("children", ())],
        )

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """All descendants (including self) with exactly this name."""
        return [s for s in self.walk() if s.name == name]


class Histogram:
    """A streaming fixed log-bucket histogram of non-negative samples.

    Samples land in geometric buckets ``[BASE**i, BASE**(i+1))``; with
    ``BASE = 2**(1/8)`` (eight buckets per doubling) any percentile read
    back from the buckets is within ~4.5% relative error of the exact
    order statistic.  State is O(occupied buckets), inserts are O(1),
    and two histograms merge by bucket-wise addition — worker-process
    telemetry aggregates exactly.

    Exact ``min``/``max``/``sum`` are tracked on the side (so ``p100``
    is precise and means match), and non-positive samples are counted in
    a dedicated ``zeros`` slot (durations can quantize to 0.0 on coarse
    clocks).
    """

    BASE = 2.0 ** 0.125
    _LOG_BASE = math.log(BASE)

    __slots__ = ("count", "total", "min", "max", "zeros", "buckets", "exemplars")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.zeros = 0
        self.buckets: dict[int, int] = {}
        #: Latest traced sample per bucket: ``{idx: (trace_id, value)}``.
        #: Populated only for samples recorded under a sampled trace
        #: context, so untraced runs carry no exemplar state at all.
        self.exemplars: dict[int, tuple[str, float]] = {}

    def record(self, value: float) -> None:
        """Insert one sample (negative values clamp into the zero slot)."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zeros += 1
            return
        idx = math.floor(math.log(value) / self._LOG_BASE)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def note_exemplar(self, value: float, trace_id: str) -> None:
        """Tag the bucket holding ``value`` with a trace id.

        Exemplars let a dashboard jump from a latency bucket to one
        concrete traced request that landed in it.  Last-write-wins per
        bucket (freshest trace is the useful one); non-positive samples
        carry no exemplar.
        """
        value = float(value)
        if value <= 0.0:
            return
        idx = math.floor(math.log(value) / self._LOG_BASE)
        self.exemplars[idx] = (trace_id, value)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram into this one (exact on buckets)."""
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.zeros += other.zeros
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.exemplars.update(other.exemplars)

    def percentile(self, q: float) -> float:
        """The q-th percentile (0 ≤ q ≤ 100), ~4.5% relative error.

        Uses the nearest-rank definition over the bucketed samples; the
        returned value is the geometric midpoint of the bucket holding
        that rank, clamped to the exact observed ``[min, max]``.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q!r} outside [0, 100]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * q / 100.0))
        if rank <= self.zeros:
            return max(self.min, 0.0) if self.zeros == self.count else 0.0
        seen = self.zeros
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if rank <= seen:
                mid = self.BASE ** (idx + 0.5)
                return min(max(mid, self.min), self.max)
        return self.max

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p90(self) -> float:
        return self.percentile(90.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """JSON form: summary stats plus sparse ``{index: count}`` buckets."""
        doc = {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "zeros": self.zeros,
            "buckets": {str(i): self.buckets[i] for i in sorted(self.buckets)},
        }
        if self.exemplars:
            doc["exemplars"] = {
                str(i): [tid, val]
                for i, (tid, val) in sorted(self.exemplars.items())
            }
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "Histogram":
        """Rebuild from :meth:`to_dict` (summary percentiles recompute)."""
        h = cls()
        h.count = int(doc["count"])
        h.total = float(doc["sum"])
        if h.count:
            h.min = float(doc["min"])
            h.max = float(doc["max"])
        h.zeros = int(doc.get("zeros", 0))
        h.buckets = {int(i): int(n) for i, n in doc.get("buckets", {}).items()}
        h.exemplars = {
            int(i): (str(ex[0]), float(ex[1]))
            for i, ex in doc.get("exemplars", {}).items()
        }
        return h


# ----------------------------------------------------------------------
# Memory profiling gate (tracemalloc is opt-in: it costs real time)
# ----------------------------------------------------------------------

_MEM = os.environ.get("REPRO_MEM", "") not in ("", "0")


def mem_enabled() -> bool:
    """Whether memory spans attribute tracemalloc data (``REPRO_MEM``/``--mem``)."""
    return _MEM


def enable_memory() -> None:
    """Turn on memory attribution and start tracemalloc if needed."""
    global _MEM
    _MEM = True
    if not tracemalloc.is_tracing():
        tracemalloc.start()


def disable_memory() -> None:
    """Turn off memory attribution (stops tracemalloc if it is running)."""
    global _MEM
    _MEM = False
    if tracemalloc.is_tracing():
        tracemalloc.stop()


@contextmanager
def memory_delta() -> Iterator[dict[str, int]]:
    """Measure tracemalloc peak/net allocations across the body.

    Yields a dict that is filled in on exit with ``peak_bytes`` (high-water
    mark above the entry level — always ≥ ``net_bytes``) and ``net_bytes``
    (allocations minus frees, may be negative).  Starts tracemalloc on
    demand when memory profiling is enabled; yields zeros when disabled.
    Nested measurements each reset the shared peak, so an outer window's
    peak is the high-water mark *since its last inner window closed*.
    """
    out = {"peak_bytes": 0, "net_bytes": 0}
    if not _MEM:
        yield out
        return
    if not tracemalloc.is_tracing():
        tracemalloc.start()
    base, _ = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    try:
        yield out
    finally:
        current, peak = tracemalloc.get_traced_memory()
        out["peak_bytes"] = max(0, peak - base)
        out["net_bytes"] = current - base


class WarningLimiter:
    """A per-message token bucket for structured warnings.

    A wedged worker can emit the same stall/fallback warning thousands
    of times per second; without a limiter every one of them lands in
    the journal (a *sync* kind — each costs an fsync) and the trace.
    Each distinct message gets a bucket of ``burst`` tokens refilling
    at ``rate`` tokens/second; warnings without a token are dropped and
    counted, and the count is surfaced as ``suppressed_count`` on the
    next warning of that message that does get through.

    ``clock`` is injectable so tests can drive refill deterministically.
    """

    def __init__(
        self,
        rate: float = 1.0,
        burst: int = 8,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: dict[str, tuple[float, float]] = {}
        self._suppressed: dict[str, int] = {}

    def admit(self, message: str) -> tuple[bool, int]:
        """Whether this warning may be emitted, plus how many identical
        warnings were suppressed since the last emission."""
        now = self._clock()
        tokens, last = self._buckets.get(message, (self.burst, now))
        tokens = min(self.burst, tokens + (now - last) * self.rate)
        if tokens >= 1.0:
            self._buckets[message] = (tokens - 1.0, now)
            return True, self._suppressed.pop(message, 0)
        self._buckets[message] = (tokens, now)
        self._suppressed[message] = self._suppressed.get(message, 0) + 1
        return False, 0


class _NullSpan:
    """The shared no-op context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Observability:
    """A span/counter/gauge/event collector (see module docstring)."""

    def __init__(self) -> None:
        self.enabled = False
        #: Optional crash-safe event spool (duck-typed to avoid a module
        #: cycle; see :class:`repro.obs.journal.Journal`).  When set,
        #: every span open/close, counter/gauge/histogram mutation and
        #: warning is appended to it as it happens, so a hard kill
        #: leaves a replayable record.  Survives :meth:`reset` — the
        #: CLI resets the collector *before* attaching the journal, and
        #: a reset mid-run must not silently detach the spool.
        self.journal: Any | None = None
        #: Token bucket applied to :meth:`warning` (replaceable by tests
        #: or operators needing a different rate).  Survives
        #: :meth:`reset` for the same reason the journal does: a reset
        #: mid-run must not re-open the floodgates for a warning storm.
        self.warn_limiter = WarningLimiter()
        self.reset()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Drop all recorded state and restart the clock epoch."""
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.events: list[dict] = []
        self._epoch = time.perf_counter()

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def now(self) -> float:
        """Seconds since the collector's epoch."""
        return time.perf_counter() - self._epoch

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Context manager timing a span; yields the :class:`Span`.

        Disabled collectors return a shared no-op context manager that
        yields ``None`` — the only cost is this method call.
        """
        if not self.enabled:
            return NULL_SPAN
        return self._live_span(name, attrs)

    @contextmanager
    def _live_span(self, name: str, attrs: dict) -> Iterator[Span]:
        # When a sampled trace context is ambient, every span joins the
        # request tree: it gets its own span_id, records its parent's,
        # and activates itself as the context for anything it encloses.
        # Unsampled or untraced runs pay one ContextVar read here.
        ctx = _trace_context.current()
        token = None
        if ctx is not None and ctx.sampled:
            child = ctx.child()
            attrs.setdefault("trace_id", child.trace_id)
            attrs.setdefault("span_id", child.span_id)
            if ctx.span_id:
                attrs.setdefault("parent_span_id", ctx.span_id)
            token = _trace_context._CURRENT.set(child)
        sp = Span(name=name, attrs=attrs, start=self.now())
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(sp)
        self._stack.append(sp)
        if self.journal is not None:
            self.journal.record("span_open", name=name, attrs=attrs)
        t0 = time.perf_counter()
        try:
            yield sp
        finally:
            sp.duration = time.perf_counter() - t0
            self._stack.pop()
            if token is not None:
                _trace_context._CURRENT.reset(token)
            if self.journal is not None:
                self.journal.record(
                    "span_close",
                    name=name,
                    duration=round(sp.duration, 6),
                    attrs=sp.attrs,
                )

    def attach(self, sp: Span) -> None:
        """Graft a pre-built span tree under the currently open span.

        Used by code that assembles timing out-of-band — e.g. the sweep
        engine turning worker-process shard telemetry into spans.  No-op
        while disabled.
        """
        if not self.enabled:
            return
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(sp)
        if self.journal is not None:
            self.journal.record("attach", span=sp.to_dict())

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def add(self, name: str, delta: int = 1) -> None:
        """Increment a monotonic counter (no-op while disabled)."""
        if not self.enabled:
            return
        if delta < 0:
            raise ValueError(f"counter {name!r}: negative delta {delta}")
        self.counters[name] = self.counters.get(name, 0) + delta
        if self.journal is not None:
            self.journal.record("counter", name=name, delta=delta)

    def add_many(self, deltas: dict[str, int]) -> None:
        """Merge a ``{counter: delta}`` dict (worker telemetry)."""
        for name, delta in deltas.items():
            self.add(name, delta)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a last-write-wins gauge (no-op while disabled)."""
        if not self.enabled:
            return
        self.gauges[name] = float(value)
        if self.journal is not None:
            self.journal.record("gauge", name=name, value=float(value))

    def observe(self, name: str, value: float) -> None:
        """Record one sample into a named histogram (no-op while disabled)."""
        if not self.enabled:
            return
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.record(value)
        ctx = _trace_context.current()
        if ctx is not None and ctx.sampled:
            hist.note_exemplar(value, ctx.trace_id)
        if self.journal is not None:
            self.journal.record("observe", name=name, value=float(value))

    def merge_histogram(self, name: str, other: Histogram) -> None:
        """Fold a pre-built histogram (worker telemetry) into a named one."""
        if not self.enabled:
            return
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.merge(other)
        if self.journal is not None:
            self.journal.record("histogram", name=name, data=other.to_dict())

    def mem_span(self, name: str, **attrs: Any):
        """A span that additionally attributes tracemalloc peak/net bytes.

        Degrades to a plain span when memory profiling is off, and to
        the shared no-op when the collector is disabled — the memory
        accounting is double-gated because tracemalloc is expensive.
        """
        if not self.enabled:
            return NULL_SPAN
        if not _MEM:
            return self._live_span(name, attrs)
        return self._mem_live_span(name, attrs)

    @contextmanager
    def _mem_live_span(self, name: str, attrs: dict) -> Iterator[Span]:
        with self._live_span(name, attrs) as sp:
            with memory_delta() as mem:
                yield sp
            sp.attrs["mem_peak_bytes"] = mem["peak_bytes"]
            sp.attrs["mem_net_bytes"] = mem["net_bytes"]

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def warning(self, message: str, **attrs: Any) -> None:
        """Log a structured warning; record it in the trace if enabled.

        The stdlib log record fires unconditionally so that operational
        problems surface even without ``--trace``.  Repeats of the same
        message are rate-limited by :attr:`warn_limiter`; the first
        warning emitted after a run of suppression carries a
        ``suppressed_count`` attribute accounting for the drops.
        """
        emit, suppressed = self.warn_limiter.admit(message)
        if not emit:
            return
        if suppressed:
            attrs = {**attrs, "suppressed_count": suppressed}
        ctx = _trace_context.current()
        if ctx is not None and ctx.sampled and "trace_id" not in attrs:
            attrs = {**attrs, "trace_id": ctx.trace_id}
        if attrs:
            detail = ", ".join(f"{k}={v!r}" for k, v in sorted(attrs.items()))
            _log.warning("%s (%s)", message, detail)
        else:
            _log.warning("%s", message)
        if self.enabled:
            self.events.append(
                {
                    "kind": "warning",
                    "message": message,
                    "attrs": attrs,
                    "t": self.now(),
                }
            )
            if self.journal is not None:
                self.journal.record("warning", message=message, attrs=attrs)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """The whole collector state as a JSON-serializable document."""
        return {
            "version": 1,
            "spans": [s.to_dict() for s in self.roots],
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_dict()
                for k in sorted(self.histograms)
            },
            "events": list(self.events),
        }


# ----------------------------------------------------------------------
# The module-level collector (what the library wiring and the CLI use)
# ----------------------------------------------------------------------

_OBS = Observability()


def get() -> Observability:
    """The process-global collector."""
    return _OBS


def enabled() -> bool:
    """Whether the global collector is recording."""
    return _OBS.enabled


def enable() -> None:
    """Start recording on the global collector."""
    _OBS.enable()


def disable() -> None:
    """Stop recording on the global collector (state is retained)."""
    _OBS.disable()


def reset() -> None:
    """Clear the global collector and restart its clock."""
    _OBS.reset()


def span(name: str, **attrs: Any):
    """``with obs.span("name", key=val) as sp:`` — time a nested span."""
    if not _OBS.enabled:  # fast path: one attribute load + bool check
        return NULL_SPAN
    return _OBS._live_span(name, attrs)


def attach(sp: Span) -> None:
    """Graft a pre-built span under the current span of the global trace."""
    _OBS.attach(sp)


def mem_span(name: str, **attrs: Any):
    """A global span that also attributes tracemalloc peak/net bytes."""
    if not _OBS.enabled:  # fast path: one attribute load + bool check
        return NULL_SPAN
    return _OBS.mem_span(name, **attrs)


def add(name: str, delta: int = 1) -> None:
    """Increment a global counter."""
    _OBS.add(name, delta)


def observe(name: str, value: float) -> None:
    """Record a sample into a global histogram."""
    _OBS.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a global gauge."""
    _OBS.set_gauge(name, value)


def warning(message: str, **attrs: Any) -> None:
    """Structured warning through the global collector (always logged)."""
    _OBS.warning(message, **attrs)


def counters() -> dict[str, int]:
    """Snapshot of the global counters."""
    return dict(_OBS.counters)


def gauges() -> dict[str, float]:
    """Snapshot of the global gauges."""
    return dict(_OBS.gauges)


def histograms() -> dict[str, Histogram]:
    """The global histograms (live objects, keyed by name)."""
    return dict(_OBS.histograms)


def now() -> float:
    """Seconds since the global collector's epoch."""
    return _OBS.now()


def set_journal(journal: Any | None) -> None:
    """Attach an event journal to the global collector (``None`` detaches).

    The journal (see :class:`repro.obs.journal.Journal`) receives every
    subsequent span/counter/gauge/histogram/warning event; it is NOT
    closed by this call — lifecycle stays with the owner.
    """
    _OBS.journal = journal


def get_journal() -> Any | None:
    """The global collector's attached journal, if any."""
    return _OBS.journal
