"""The observability substrate: spans, counters, gauges, events.

Everything in this module is dependency-free stdlib Python, sits below
``runtime``/``verify``/``analysis`` in the import graph, and costs one
boolean check per call site when disabled — hot loops (the BACKER
simulator, the executor, the sweep kernels) may call :func:`add` and
:func:`span` unconditionally.

Model
-----
* A :class:`Span` is a named, timed tree node with free-form JSON
  attributes.  Spans nest: ``with obs.span("sweep"): ...`` opens a span,
  and any span opened inside it becomes a child.  Subsystems that do
  their timing elsewhere (e.g. worker processes returning per-shard
  timings over a pipe) build :class:`Span` trees by hand and graft them
  into the live trace with :func:`attach`.
* **Counters** are monotonic named integers (``obs.add("backer.fetches")``),
  **gauges** are last-write-wins floats.  Both live in a flat global
  registry so totals survive across spans and can be compared against
  per-span attributes.
* **Events** are out-of-band structured records (currently warnings).
  :func:`warning` always logs through the stdlib ``repro.obs`` logger —
  even with the collector disabled — so operational problems (a broken
  process pool, a retried shard) are never silent; when the collector is
  enabled the event is additionally recorded in the trace.

The module-level collector is what the CLI's ``--trace``/``--profile``
flags and the library wiring use; tests may construct private
:class:`Observability` instances.

Thread-safety: the collector is designed for the single-threaded
orchestration process (workers are separate *processes* whose telemetry
returns by value); concurrent mutation from threads is not supported.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "Span",
    "Observability",
    "enabled",
    "enable",
    "disable",
    "reset",
    "span",
    "attach",
    "add",
    "set_gauge",
    "warning",
    "counters",
    "gauges",
    "get",
    "now",
]

_log = logging.getLogger("repro.obs")


@dataclass
class Span:
    """One named, timed node of the trace tree.

    ``start`` is seconds since the collector's epoch (``reset`` time);
    spans reconstructed from worker-process telemetry use ``start=0.0``
    because worker clocks are not comparable across processes.
    """

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    start: float = 0.0
    duration: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-serializable form (attrs must be JSON-serializable)."""
        return {
            "name": self.name,
            "attrs": self.attrs,
            "start": self.start,
            "duration": self.duration,
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Span":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=doc["name"],
            attrs=dict(doc.get("attrs", {})),
            start=doc.get("start", 0.0),
            duration=doc.get("duration", 0.0),
            children=[cls.from_dict(c) for c in doc.get("children", ())],
        )

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """All descendants (including self) with exactly this name."""
        return [s for s in self.walk() if s.name == name]


class _NullSpan:
    """The shared no-op context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Observability:
    """A span/counter/gauge/event collector (see module docstring)."""

    def __init__(self) -> None:
        self.enabled = False
        self.reset()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Drop all recorded state and restart the clock epoch."""
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.events: list[dict] = []
        self._epoch = time.perf_counter()

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def now(self) -> float:
        """Seconds since the collector's epoch."""
        return time.perf_counter() - self._epoch

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Context manager timing a span; yields the :class:`Span`.

        Disabled collectors return a shared no-op context manager that
        yields ``None`` — the only cost is this method call.
        """
        if not self.enabled:
            return NULL_SPAN
        return self._live_span(name, attrs)

    @contextmanager
    def _live_span(self, name: str, attrs: dict) -> Iterator[Span]:
        sp = Span(name=name, attrs=attrs, start=self.now())
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(sp)
        self._stack.append(sp)
        t0 = time.perf_counter()
        try:
            yield sp
        finally:
            sp.duration = time.perf_counter() - t0
            self._stack.pop()

    def attach(self, sp: Span) -> None:
        """Graft a pre-built span tree under the currently open span.

        Used by code that assembles timing out-of-band — e.g. the sweep
        engine turning worker-process shard telemetry into spans.  No-op
        while disabled.
        """
        if not self.enabled:
            return
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(sp)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def add(self, name: str, delta: int = 1) -> None:
        """Increment a monotonic counter (no-op while disabled)."""
        if not self.enabled:
            return
        if delta < 0:
            raise ValueError(f"counter {name!r}: negative delta {delta}")
        self.counters[name] = self.counters.get(name, 0) + delta

    def add_many(self, deltas: dict[str, int]) -> None:
        """Merge a ``{counter: delta}`` dict (worker telemetry)."""
        for name, delta in deltas.items():
            self.add(name, delta)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a last-write-wins gauge (no-op while disabled)."""
        if not self.enabled:
            return
        self.gauges[name] = float(value)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def warning(self, message: str, **attrs: Any) -> None:
        """Log a structured warning; record it in the trace if enabled.

        The stdlib log record fires unconditionally so that operational
        problems surface even without ``--trace``.
        """
        if attrs:
            detail = ", ".join(f"{k}={v!r}" for k, v in sorted(attrs.items()))
            _log.warning("%s (%s)", message, detail)
        else:
            _log.warning("%s", message)
        if self.enabled:
            self.events.append(
                {
                    "kind": "warning",
                    "message": message,
                    "attrs": attrs,
                    "t": self.now(),
                }
            )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """The whole collector state as a JSON-serializable document."""
        return {
            "version": 1,
            "spans": [s.to_dict() for s in self.roots],
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "events": list(self.events),
        }


# ----------------------------------------------------------------------
# The module-level collector (what the library wiring and the CLI use)
# ----------------------------------------------------------------------

_OBS = Observability()


def get() -> Observability:
    """The process-global collector."""
    return _OBS


def enabled() -> bool:
    """Whether the global collector is recording."""
    return _OBS.enabled


def enable() -> None:
    """Start recording on the global collector."""
    _OBS.enable()


def disable() -> None:
    """Stop recording on the global collector (state is retained)."""
    _OBS.disable()


def reset() -> None:
    """Clear the global collector and restart its clock."""
    _OBS.reset()


def span(name: str, **attrs: Any):
    """``with obs.span("name", key=val) as sp:`` — time a nested span."""
    if not _OBS.enabled:  # fast path: one attribute load + bool check
        return NULL_SPAN
    return _OBS._live_span(name, attrs)


def attach(sp: Span) -> None:
    """Graft a pre-built span under the current span of the global trace."""
    _OBS.attach(sp)


def add(name: str, delta: int = 1) -> None:
    """Increment a global counter."""
    _OBS.add(name, delta)


def set_gauge(name: str, value: float) -> None:
    """Set a global gauge."""
    _OBS.set_gauge(name, value)


def warning(message: str, **attrs: Any) -> None:
    """Structured warning through the global collector (always logged)."""
    _OBS.warning(message, **attrs)


def counters() -> dict[str, int]:
    """Snapshot of the global counters."""
    return dict(_OBS.counters)


def gauges() -> dict[str, float]:
    """Snapshot of the global gauges."""
    return dict(_OBS.gauges)


def now() -> float:
    """Seconds since the global collector's epoch."""
    return _OBS.now()
