"""repro — computation-centric memory models.

A production-quality reproduction of *Computation-Centric Memory Models*
(Matteo Frigo and Victor Luchangco, SPAA 1998).

The package is organized bottom-up:

* :mod:`repro.dag` — dag algorithms (reachability, topological sorts,
  prefixes, generators).
* :mod:`repro.core` — the paper's Section 2 vocabulary: operations,
  computations (Definition 1), observer functions (Definition 2),
  last-writer functions (Definition 13).
* :mod:`repro.models` — SC, LC, the dag-consistency family (NN/NW/WN/WW
  and arbitrary predicates), constructibility and bounded Δ* computation,
  and empirical lattice tooling.
* :mod:`repro.lang` — a Cilk-style spawn/sync frontend that unfolds
  programs into computations.
* :mod:`repro.runtime` — a simulated multiprocessor: schedulers
  (greedy / work stealing), serialized memories, and the BACKER
  coherence algorithm.
* :mod:`repro.verify` — post-mortem verification of execution traces
  against memory models.
* :mod:`repro.analysis` — lattice reports regenerating Figure 1.
* :mod:`repro.paperfigures` — the paper's Figures 2–4 as executable,
  mechanically verified objects.

Quickstart::

    from repro import ComputationBuilder, ObserverFunction, LC, NN

    b = ComputationBuilder()
    a = b.write("x", name="A")
    c = b.read("x", name="C", after=[a])
    comp = b.build()
    phi = ObserverFunction(comp, {"x": (a.node_id, a.node_id)})
    assert LC.contains(comp, phi) and NN.contains(comp, phi)
"""

from repro.core import (
    EMPTY_COMPUTATION,
    Computation,
    ComputationBuilder,
    N,
    ObserverFunction,
    Op,
    R,
    W,
    last_writer_function,
)
from repro.models import (
    CC,
    LC,
    NN,
    NW,
    SC,
    WN,
    WW,
    MemoryModel,
    QDagConsistency,
    Universe,
    constructible_version,
    find_nonconstructibility_witness,
)

__version__ = "1.0.0"

__all__ = [
    "Computation",
    "ComputationBuilder",
    "ObserverFunction",
    "Op",
    "R",
    "W",
    "N",
    "EMPTY_COMPUTATION",
    "last_writer_function",
    "MemoryModel",
    "QDagConsistency",
    "SC",
    "LC",
    "CC",
    "NN",
    "NW",
    "WN",
    "WW",
    "Universe",
    "constructible_version",
    "find_nonconstructibility_witness",
    "__version__",
]
