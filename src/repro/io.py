"""JSON serialization for computations, observer functions, and traces.

A practical post-mortem verifier needs its inputs to cross process
boundaries: a runtime dumps what happened, a checker loads it later.
This module defines a small, versioned JSON format for the library's
core objects.

Locations may be strings, integers, booleans, ``None``, or (nested)
tuples of those — everything the bundled workloads use.  Tuples are
encoded with an explicit tag so they survive the JSON round trip as
tuples (plain JSON arrays would come back as unhashable lists).

Format sketch::

    {"format": "repro/computation", "version": 1,
     "num_nodes": 3,
     "edges": [[0, 1]],
     "ops": [{"kind": "W", "loc": "x"}, {"kind": "R", "loc": "x"},
             {"kind": "N"}]}

Observer functions embed their computation; traces embed schedule and
read events.  All ``dump*`` functions return JSON-compatible dicts (use
``json.dumps`` on them); ``load*`` functions validate via the normal
constructors, so a corrupted file fails loudly with the library's own
exceptions.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.computation import Computation
from repro.core.observer import ObserverFunction
from repro.core.ops import N, Op, R, W, Location
from repro.dag.digraph import Dag
from repro.errors import ReproError
from repro.runtime.scheduler import Schedule
from repro.runtime.trace import ExecutionTrace, PartialObserver, ReadEvent

__all__ = [
    "dump_computation",
    "load_computation",
    "dump_observer",
    "load_observer",
    "dump_partial_observer",
    "load_partial_observer",
    "dump_trace",
    "load_trace",
    "dumps",
    "loads",
]

_FORMATS = {
    "repro/computation": 1,
    "repro/observer": 1,
    "repro/partial-observer": 1,
    "repro/trace": 1,
}


class FormatError(ReproError):
    """Raised when a JSON document does not match the expected format."""


# ---------------------------------------------------------------------------
# Locations
# ---------------------------------------------------------------------------


def _encode_location(loc: Location) -> Any:
    if isinstance(loc, tuple):
        return {"tuple": [_encode_location(x) for x in loc]}
    if isinstance(loc, (str, int, float, bool)) or loc is None:
        return loc
    raise FormatError(
        f"unsupported location type {type(loc).__name__!r}; use "
        "strings, numbers, booleans or tuples of those"
    )


def _decode_location(data: Any) -> Location:
    if isinstance(data, dict):
        if set(data) != {"tuple"}:
            raise FormatError(f"bad location encoding: {data!r}")
        return tuple(_decode_location(x) for x in data["tuple"])
    return data


# ---------------------------------------------------------------------------
# Computations
# ---------------------------------------------------------------------------


def _encode_op(op: Op) -> dict:
    if op.is_nop:
        return {"kind": "N"}
    return {"kind": op.kind, "loc": _encode_location(op.loc)}


def _decode_op(data: dict) -> Op:
    kind = data.get("kind")
    if kind == "N":
        return N
    if kind == "R":
        return R(_decode_location(data["loc"]))
    if kind == "W":
        return W(_decode_location(data["loc"]))
    raise FormatError(f"bad op encoding: {data!r}")


def _check_header(data: dict, fmt: str) -> None:
    if not isinstance(data, dict) or data.get("format") != fmt:
        raise FormatError(f"expected a {fmt!r} document")
    if data.get("version") != _FORMATS[fmt]:
        raise FormatError(
            f"unsupported {fmt} version {data.get('version')!r}"
        )


def dump_computation(comp: Computation) -> dict:
    """Encode a computation as a JSON-compatible dict."""
    return {
        "format": "repro/computation",
        "version": 1,
        "num_nodes": comp.num_nodes,
        "edges": sorted([u, v] for (u, v) in comp.dag.edges),
        "ops": [_encode_op(op) for op in comp.ops],
    }


def load_computation(data: dict) -> Computation:
    """Decode :func:`dump_computation` output (validates structure)."""
    _check_header(data, "repro/computation")
    dag = Dag(data["num_nodes"], [tuple(e) for e in data["edges"]])
    return Computation(dag, [_decode_op(o) for o in data["ops"]])


# ---------------------------------------------------------------------------
# Observer functions
# ---------------------------------------------------------------------------


def dump_observer(phi: ObserverFunction) -> dict:
    """Encode an observer function with its computation."""
    return {
        "format": "repro/observer",
        "version": 1,
        "computation": dump_computation(phi.computation),
        "rows": [
            {"loc": _encode_location(loc), "row": list(phi.row(loc))}
            for loc in phi.locations
        ],
    }


def load_observer(data: dict) -> ObserverFunction:
    """Decode :func:`dump_observer` output (re-validates Definition 2)."""
    _check_header(data, "repro/observer")
    comp = load_computation(data["computation"])
    mapping = {
        _decode_location(r["loc"]): tuple(r["row"]) for r in data["rows"]
    }
    return ObserverFunction(comp, mapping, validate=True)


# ---------------------------------------------------------------------------
# Partial observers and traces
# ---------------------------------------------------------------------------


def dump_partial_observer(po: PartialObserver) -> dict:
    """Encode a partial observer (trace constraints) with its computation."""
    return {
        "format": "repro/partial-observer",
        "version": 1,
        "computation": dump_computation(po.comp),
        "constraints": [
            {"loc": _encode_location(loc), "node": u, "value": v}
            for loc, u, v in sorted(
                po.entries(), key=lambda t: (repr(t[0]), t[1])
            )
        ],
    }


def load_partial_observer(data: dict) -> PartialObserver:
    """Decode :func:`dump_partial_observer` output."""
    _check_header(data, "repro/partial-observer")
    comp = load_computation(data["computation"])
    constraints: dict[Location, dict[int, int | None]] = {}
    for c in data["constraints"]:
        loc = _decode_location(c["loc"])
        constraints.setdefault(loc, {})[c["node"]] = c["value"]
    return PartialObserver(comp, constraints)


def dump_trace(trace: ExecutionTrace) -> dict:
    """Encode an execution trace (computation + schedule + read events)."""
    return {
        "format": "repro/trace",
        "version": 1,
        "computation": dump_computation(trace.comp),
        "memory": trace.memory_name,
        "num_procs": trace.schedule.num_procs,
        "proc_of": list(trace.schedule.proc_of),
        "start_of": list(trace.schedule.start_of),
        "reads": [
            {"node": e.node, "loc": _encode_location(e.loc), "observed": e.observed}
            for e in trace.reads
        ],
    }


def load_trace(data: dict) -> ExecutionTrace:
    """Decode :func:`dump_trace` output (re-validates the schedule)."""
    _check_header(data, "repro/trace")
    comp = load_computation(data["computation"])
    sched = Schedule(
        comp,
        tuple(data["proc_of"]),
        tuple(data["start_of"]),
        data["num_procs"],
    )
    trace = ExecutionTrace(comp, sched, data["memory"])
    for e in data["reads"]:
        trace.reads.append(
            ReadEvent(e["node"], _decode_location(e["loc"]), e["observed"])
        )
    return trace


# ---------------------------------------------------------------------------
# String-level convenience
# ---------------------------------------------------------------------------

_DUMPERS = {
    Computation: dump_computation,
    ObserverFunction: dump_observer,
    PartialObserver: dump_partial_observer,
    ExecutionTrace: dump_trace,
}

_LOADERS = {
    "repro/computation": load_computation,
    "repro/observer": load_observer,
    "repro/partial-observer": load_partial_observer,
    "repro/trace": load_trace,
}


def dumps(obj: Any, indent: int | None = 2) -> str:
    """Serialize any supported object to a JSON string."""
    for cls, dumper in _DUMPERS.items():
        if isinstance(obj, cls):
            return json.dumps(dumper(obj), indent=indent)
    raise FormatError(f"cannot serialize {type(obj).__name__!r}")


def loads(text: str) -> Any:
    """Deserialize a JSON string produced by :func:`dumps` (dispatches on
    the embedded format tag)."""
    data = json.loads(text)
    if not isinstance(data, dict) or "format" not in data:
        raise FormatError("not a repro document (missing format tag)")
    loader = _LOADERS.get(data["format"])
    if loader is None:
        raise FormatError(f"unknown format {data['format']!r}")
    return loader(data)
