"""Prefixes (downsets) and antichains of a dag.

A *prefix* of a dag ``G`` (paper, Section 2) is a subgraph closed under
predecessors together with all induced edges.  Prefixes are the central
object of constructibility (Definition 6): an online consistency algorithm
sees the computation one prefix at a time.

This module enumerates prefixes as node bitsets, checks the prefix
property, and enumerates antichains (used by tests as certificates of
incomparability).
"""

from __future__ import annotations

from typing import Iterator

from repro.dag.digraph import Dag, bit_indices

__all__ = [
    "is_prefix_mask",
    "all_prefix_masks",
    "prefix_closure_mask",
    "all_antichains",
    "is_antichain",
]


def is_prefix_mask(dag: Dag, mask: int) -> bool:
    """True iff the node set ``mask`` is closed under predecessors."""
    return dag.is_prefix_node_set(mask)


def prefix_closure_mask(dag: Dag, mask: int) -> int:
    """The smallest prefix (downset) containing the nodes of ``mask``."""
    out = mask
    for u in bit_indices(mask):
        out |= dag.ancestors_mask(u)
    return out


def all_prefix_masks(dag: Dag) -> Iterator[int]:
    """Yield every downset of ``dag`` as a bitset, smallest first.

    Enumerates by BFS over the downset lattice: starting from the empty
    set, add any node whose predecessors are already present.  The number
    of downsets can be exponential (``2^n`` for an edgeless dag); callers
    should bound the dag size.
    """
    n = dag.num_nodes
    seen = {0}
    frontier = [0]
    yield 0
    while frontier:
        mask = frontier.pop()
        for u in range(n):
            if mask & (1 << u):
                continue
            if dag.predecessor_mask(u) & ~mask:
                continue
            nxt = mask | (1 << u)
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
                yield nxt


def is_antichain(dag: Dag, nodes: tuple[int, ...]) -> bool:
    """True iff no two distinct nodes of ``nodes`` are comparable."""
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            if dag.comparable(u, v):
                return False
    return True


def all_antichains(dag: Dag) -> Iterator[tuple[int, ...]]:
    """Yield every antichain of ``dag`` (including the empty one).

    Backtracking over node ids in increasing order; a node may be added if
    it is incomparable with everything chosen so far.
    """
    n = dag.num_nodes
    chosen: list[int] = []

    def backtrack(start: int) -> Iterator[tuple[int, ...]]:
        yield tuple(chosen)
        for u in range(start, n):
            if all(not dag.comparable(u, v) for v in chosen):
                chosen.append(u)
                yield from backtrack(u + 1)
                chosen.pop()

    yield from backtrack(0)
