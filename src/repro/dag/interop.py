"""Interoperability with networkx.

:class:`~repro.dag.digraph.Dag` is deliberately minimal (immutable,
bitset-based); for everything else there is networkx.  These converters
let users round-trip, and let the test suite *cross-validate* our
algorithms (transitive closure, topological sorts, longest paths,
antichains) against an independent, mature implementation.
"""

from __future__ import annotations

from repro.dag.digraph import Dag
from repro.errors import InvalidComputationError

__all__ = ["to_networkx", "from_networkx"]


def to_networkx(dag: Dag):
    """Convert to a ``networkx.DiGraph`` (nodes 0..n-1, same edges)."""
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(dag.nodes())
    g.add_edges_from(sorted(dag.edges))
    return g


def from_networkx(graph) -> Dag:
    """Convert a ``networkx.DiGraph`` back to a :class:`Dag`.

    Node labels must be exactly ``0 .. n-1`` (use
    ``networkx.convert_node_labels_to_integers`` first if needed);
    cycles raise :class:`~repro.errors.CycleError` via the ``Dag``
    constructor.
    """
    nodes = sorted(graph.nodes())
    n = len(nodes)
    if nodes != list(range(n)):
        raise InvalidComputationError(
            "from_networkx: node labels must be 0..n-1 "
            "(use networkx.convert_node_labels_to_integers)"
        )
    return Dag(n, list(graph.edges()))
