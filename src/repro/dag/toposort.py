"""Topological sorts: enumeration, counting, and sampling.

The paper defines SC and LC in terms of *some* topological sort of the
computation (Definitions 17 and 18), so deciding membership exhaustively
requires enumerating ``TS(G)``, the set of all topological sorts.  This
module provides:

* :func:`all_topological_sorts` — lazy backtracking enumeration of every
  sort (exponentially many in general; intended for small dags and for
  cross-checking the polynomial algorithms in :mod:`repro.models`).
* :func:`count_topological_sorts` — the number of linear extensions,
  computed by dynamic programming over downsets (feasible to ~20 nodes).
* :func:`random_topological_sort` — a uniformly *frontier-random* sort
  (each step picks uniformly among currently available nodes; not uniform
  over linear extensions, but cheap and adequate for randomized testing).
* :func:`is_topological_sort` — validation.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, Sequence

import random

from repro import _caching
from repro.dag.digraph import Dag, bit_indices

__all__ = [
    "all_topological_sorts",
    "cached_topological_sorts",
    "count_topological_sorts",
    "random_topological_sort",
    "is_topological_sort",
]


def is_topological_sort(dag: Dag, order: Sequence[int]) -> bool:
    """True iff ``order`` is a permutation of the nodes respecting all edges."""
    n = dag.num_nodes
    if len(order) != n or set(order) != set(range(n)):
        return False
    pos = {u: i for i, u in enumerate(order)}
    return all(pos[u] < pos[v] for (u, v) in dag.edges)


def all_topological_sorts(dag: Dag) -> Iterator[tuple[int, ...]]:
    """Yield every topological sort of ``dag`` (lexicographic in node ids).

    Uses backtracking over the available frontier.  The number of sorts can
    be as large as ``n!`` (for an edgeless dag); callers should bound the
    dag size or consume lazily.
    """
    n = dag.num_nodes
    if n == 0:
        yield ()
        return
    indeg = [dag.in_degree(u) for u in range(n)]
    order: list[int] = []

    def backtrack() -> Iterator[tuple[int, ...]]:
        if len(order) == n:
            yield tuple(order)
            return
        for u in range(n):
            if indeg[u] == 0:
                indeg[u] = -1  # mark used
                for v in dag.successors(u):
                    indeg[v] -= 1
                order.append(u)
                yield from backtrack()
                order.pop()
                for v in dag.successors(u):
                    indeg[v] += 1
                indeg[u] = 0

    yield from backtrack()


def cached_topological_sorts(dag: Dag) -> tuple[tuple[int, ...], ...]:
    """All topological sorts of ``dag``, materialized and memoized.

    Exhaustive sweeps evaluate many (labelling, observer) combinations
    over the *same* dag shape, and :class:`Dag` hashes by value, so the
    sort set is computed once per shape per process.  Only use this for
    the small dags of enumeration universes — the tuple holds up to
    ``n!`` sorts.
    """
    if not _caching.ENABLED:
        return tuple(all_topological_sorts(dag))
    return _cached_topological_sorts(dag)


@lru_cache(maxsize=4096)
def _cached_topological_sorts(dag: Dag) -> tuple[tuple[int, ...], ...]:
    return tuple(all_topological_sorts(dag))


def count_topological_sorts(dag: Dag) -> int:
    """The number of linear extensions of ``dag``.

    Dynamic programming over downsets (prefixes): the number of ways to
    linearize a downset ``S`` is the sum over maximal elements ``u`` of
    ``S`` of the count for ``S - {u}``.  Runs in time proportional to the
    number of downsets, which is manageable for dags of up to roughly 20
    nodes (and tiny for series-parallel dags).
    """
    n = dag.num_nodes
    if n == 0:
        return 1
    pred_mask = [dag.predecessor_mask(u) for u in range(n)]
    full = (1 << n) - 1
    memo: dict[int, int] = {0: 1}

    def count(mask: int) -> int:
        cached = memo.get(mask)
        if cached is not None:
            return cached
        total = 0
        # u can be last in a linearization of `mask` iff u's successors are
        # all outside mask, i.e. removing u keeps a downset.  Equivalently:
        # u in mask and no successor of u is in mask.
        for u in bit_indices(mask):
            if dag.successor_mask(u) & mask:
                continue
            total += count(mask & ~(1 << u))
        memo[mask] = total
        return total

    # Only downsets are ever queried: we start from the full set (a downset)
    # and remove maximal elements, preserving downset-ness.
    _ = pred_mask  # retained for symmetry/documentation
    return count(full)


def random_topological_sort(
    dag: Dag, rng: random.Random | None = None
) -> tuple[int, ...]:
    """A random topological sort, built by uniform frontier sampling.

    Each step removes a uniformly random currently-available (in-degree
    zero) node.  Every topological sort has non-zero probability, which is
    what randomized tests need; the distribution over sorts is *not*
    uniform in general.
    """
    rng = rng or random.Random()
    n = dag.num_nodes
    indeg = [dag.in_degree(u) for u in range(n)]
    frontier = [u for u in range(n) if indeg[u] == 0]
    order: list[int] = []
    while frontier:
        i = rng.randrange(len(frontier))
        frontier[i], frontier[-1] = frontier[-1], frontier[i]
        u = frontier.pop()
        order.append(u)
        for v in dag.successors(u):
            indeg[v] -= 1
            if indeg[v] == 0:
                frontier.append(v)
    assert len(order) == n, "dag invariant violated"
    return tuple(order)
