"""Immutable directed acyclic graphs with bitset reachability.

This module provides the :class:`Dag` class used throughout the library to
represent the graph part of a computation (Definition 1 of Frigo &
Luchangco).  Nodes are the integers ``0 .. n-1``; edges are ordered pairs.

Design notes
------------
* **Immutability.**  A :class:`Dag` never changes after construction, so the
  (potentially expensive) transitive closure is computed once, lazily, and
  cached.  All derived objects (computations, observer functions) may safely
  share a dag.
* **Bitsets.**  Reachability sets are stored as Python integers used as
  bitsets (bit ``v`` of ``desc[u]`` is set iff ``u ≺ v`` strictly).  Bitwise
  AND/OR on machine-word chunks makes closure computation and the
  ``between(u, w)`` queries used by the dag-consistency checkers fast even
  for dags with thousands of nodes, without requiring a compiled extension.
* **Strictness.**  ``u ≺ v`` (:meth:`Dag.precedes`) denotes a *non-empty*
  path, matching the paper's strict precedence.  ``u ⪯ v``
  (:meth:`Dag.precedes_eq`) additionally holds when ``u == v``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import CycleError, InvalidComputationError

__all__ = ["Dag", "bits", "bit_indices"]


def bits(indices: Iterable[int]) -> int:
    """Pack an iterable of bit indices into an integer bitset."""
    out = 0
    for i in indices:
        out |= 1 << i
    return out


def bit_indices(mask: int) -> Iterator[int]:
    """Yield the indices of set bits of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class Dag:
    """A finite directed acyclic graph on nodes ``0 .. n-1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes.  Nodes are identified by integers in
        ``range(num_nodes)``.
    edges:
        Iterable of ``(u, v)`` pairs.  Duplicate edges are collapsed;
        self-loops raise :class:`~repro.errors.CycleError`; any directed
        cycle raises :class:`~repro.errors.CycleError` at construction time.

    Raises
    ------
    InvalidComputationError
        If an edge endpoint falls outside ``range(num_nodes)``.
    CycleError
        If the edge set contains a directed cycle (including self-loops).
    """

    __slots__ = (
        "_n",
        "_succ",
        "_pred",
        "_edges",
        "_desc",
        "_anc",
        "_topo",
        "_hash",
    )

    def __init__(self, num_nodes: int, edges: Iterable[tuple[int, int]] = ()) -> None:
        if num_nodes < 0:
            raise InvalidComputationError(f"num_nodes must be >= 0, got {num_nodes}")
        self._n = int(num_nodes)
        succ = [0] * self._n
        pred = [0] * self._n
        edge_set: set[tuple[int, int]] = set()
        for u, v in edges:
            if not (0 <= u < self._n and 0 <= v < self._n):
                raise InvalidComputationError(
                    f"edge ({u}, {v}) out of range for {self._n} nodes"
                )
            if u == v:
                raise CycleError(f"self-loop at node {u}")
            if (u, v) in edge_set:
                continue
            edge_set.add((u, v))
            succ[u] |= 1 << v
            pred[v] |= 1 << u
        self._succ: list[int] = succ
        self._pred: list[int] = pred
        self._edges: frozenset[tuple[int, int]] = frozenset(edge_set)
        self._desc: list[int] | None = None
        self._anc: list[int] | None = None
        self._topo: tuple[int, ...] = self._toposort_once()
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes of the dag."""
        return self._n

    @property
    def edges(self) -> frozenset[tuple[int, int]]:
        """The edge set as a frozenset of ``(u, v)`` pairs."""
        return self._edges

    @property
    def num_edges(self) -> int:
        """Number of (distinct) edges."""
        return len(self._edges)

    def nodes(self) -> range:
        """The node set, as a ``range``."""
        return range(self._n)

    def successors(self, u: int) -> Iterator[int]:
        """Iterate over direct successors of ``u``."""
        return bit_indices(self._succ[u])

    def predecessors(self, u: int) -> Iterator[int]:
        """Iterate over direct predecessors of ``u``."""
        return bit_indices(self._pred[u])

    def successor_mask(self, u: int) -> int:
        """Direct successors of ``u`` as a bitset."""
        return self._succ[u]

    def predecessor_mask(self, u: int) -> int:
        """Direct predecessors of ``u`` as a bitset."""
        return self._pred[u]

    def in_degree(self, u: int) -> int:
        """Number of direct predecessors of ``u``."""
        return self._pred[u].bit_count()

    def out_degree(self, u: int) -> int:
        """Number of direct successors of ``u``."""
        return self._succ[u].bit_count()

    def sources(self) -> list[int]:
        """Nodes with no predecessors."""
        return [u for u in range(self._n) if not self._pred[u]]

    def sinks(self) -> list[int]:
        """Nodes with no successors."""
        return [u for u in range(self._n) if not self._succ[u]]

    # ------------------------------------------------------------------
    # Topological order and closure
    # ------------------------------------------------------------------

    def _toposort_once(self) -> tuple[int, ...]:
        """Kahn's algorithm; raises CycleError if the graph is cyclic."""
        indeg = [self._pred[u].bit_count() for u in range(self._n)]
        frontier = [u for u in range(self._n) if indeg[u] == 0]
        order: list[int] = []
        while frontier:
            u = frontier.pop()
            order.append(u)
            for v in bit_indices(self._succ[u]):
                indeg[v] -= 1
                if indeg[v] == 0:
                    frontier.append(v)
        if len(order) != self._n:
            raise CycleError("graph contains a directed cycle")
        return tuple(order)

    @property
    def topological_order(self) -> tuple[int, ...]:
        """One fixed topological order of the nodes (computed at init)."""
        return self._topo

    def _closure(self) -> tuple[list[int], list[int]]:
        """Compute (and cache) strict descendant/ancestor bitsets.

        Delegates to the selected kernel backend
        (:mod:`repro.kernels`); results are backend-independent python
        int rows, so cached dags compare equal no matter which backend
        filled them in.
        """
        if self._desc is None:
            from repro import kernels

            self._desc, self._anc = kernels.closure(
                self._n, self._succ, self._pred, self._topo
            )
        assert self._anc is not None
        return self._desc, self._anc

    def descendants_mask(self, u: int) -> int:
        """Bitset of nodes strictly reachable from ``u`` (``u`` excluded)."""
        return self._closure()[0][u]

    def ancestors_mask(self, u: int) -> int:
        """Bitset of nodes from which ``u`` is strictly reachable."""
        return self._closure()[1][u]

    def descendants(self, u: int) -> Iterator[int]:
        """Iterate over strict descendants of ``u``."""
        return bit_indices(self.descendants_mask(u))

    def ancestors(self, u: int) -> Iterator[int]:
        """Iterate over strict ancestors of ``u``."""
        return bit_indices(self.ancestors_mask(u))

    def precedes(self, u: int, v: int) -> bool:
        """Strict precedence ``u ≺ v``: a non-empty path from ``u`` to ``v``."""
        return bool(self.descendants_mask(u) & (1 << v))

    def precedes_eq(self, u: int, v: int) -> bool:
        """Reflexive precedence ``u ⪯ v``."""
        return u == v or self.precedes(u, v)

    def between_mask(self, u: int, w: int) -> int:
        """Bitset of nodes ``v`` with ``u ≺ v ≺ w`` (both strict)."""
        return self.descendants_mask(u) & self.ancestors_mask(w)

    def comparable(self, u: int, v: int) -> bool:
        """True iff ``u ≺ v`` or ``v ≺ u`` or ``u == v``."""
        return u == v or self.precedes(u, v) or self.precedes(v, u)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def induced_subgraph(self, keep: Sequence[int]) -> tuple["Dag", list[int]]:
        """Subgraph induced by the nodes in ``keep``.

        Returns the new dag (nodes renumbered ``0 .. len(keep)-1`` in the
        order given) and the list mapping new node ids to old node ids.
        """
        keep = list(keep)
        if len(set(keep)) != len(keep):
            raise InvalidComputationError("induced_subgraph: duplicate nodes in keep")
        index = {old: new for new, old in enumerate(keep)}
        edges = [
            (index[u], index[v])
            for (u, v) in self._edges
            if u in index and v in index
        ]
        return Dag(len(keep), edges), keep

    def with_edges_removed(self, remove: Iterable[tuple[int, int]]) -> "Dag":
        """A relaxation of this dag: same nodes, with ``remove`` edges dropped."""
        drop = set(remove)
        return Dag(self._n, (e for e in self._edges if e not in drop))

    def add_final_node(self) -> "Dag":
        """The dag of the augmented computation (Definition 11).

        Returns a dag with one extra node ``n`` (the "final" node) that is a
        direct successor of every existing node.
        """
        n = self._n
        edges = list(self._edges) + [(u, n) for u in range(n)]
        return Dag(n + 1, edges)

    def transitive_reduction_edges(self) -> frozenset[tuple[int, int]]:
        """Edges of the transitive reduction (the minimal equivalent dag)."""
        keep = []
        for (u, v) in self._edges:
            # (u, v) is redundant iff some other successor of u reaches v.
            redundant = False
            for w in bit_indices(self._succ[u] & ~(1 << v)):
                if w == v:
                    continue
                if self.precedes_eq(w, v):
                    redundant = True
                    break
            if not redundant:
                keep.append((u, v))
        return frozenset(keep)

    def is_prefix_node_set(self, mask: int) -> bool:
        """True iff the nodes in ``mask`` form a downset (prefix) of the dag.

        A node set is a prefix iff it is closed under predecessors, which is
        the node-set condition of the paper's prefix definition.
        """
        for u in bit_indices(mask):
            if self._pred[u] & ~mask:
                return False
        return True

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dag):
            return NotImplemented
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._n, self._edges))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dag(num_nodes={self._n}, edges={sorted(self._edges)})"
