"""Seeded random dag generators.

Used by the property-based tests and benchmarks to generate workloads of
controlled shape:

* :func:`gnp_dag` — classic random dag (each forward pair is an edge with
  probability ``p`` under a random node ordering).
* :func:`layered_dag` — nodes arranged in layers; edges only between
  adjacent layers (models BSP-style phase computations).
* :func:`fork_join_dag` — recursive binary fork/join skeletons, the shape
  produced by Cilk's spawn/sync.
* :func:`chain_dag` / :func:`empty_dag` — degenerate extremes (fully
  serial / fully parallel) used as baselines.

All generators take an explicit ``random.Random`` (or a seed) so every
experiment is reproducible.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.dag.digraph import Dag

__all__ = [
    "gnp_dag",
    "layered_dag",
    "fork_join_dag",
    "chain_dag",
    "empty_dag",
    "as_rng",
]


def as_rng(rng: random.Random | int | None) -> random.Random:
    """Coerce ``rng`` (a Random, a seed, or None) into a ``random.Random``."""
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


def empty_dag(n: int) -> Dag:
    """``n`` mutually independent nodes (no edges)."""
    return Dag(n)


def chain_dag(n: int) -> Dag:
    """A total order: ``0 → 1 → ... → n-1``."""
    return Dag(n, [(i, i + 1) for i in range(n - 1)])


def gnp_dag(n: int, p: float, rng: random.Random | int | None = None) -> Dag:
    """Random dag: each pair ``(i, j)`` with ``i < j`` is an edge w.p. ``p``.

    Node ids are randomly permuted relative to the generating order so that
    node id carries no positional information (the identity order is still
    always a topological sort of *some* relabelling, but callers cannot rely
    on ids being topologically sorted).
    """
    r = as_rng(rng)
    perm = list(range(n))
    r.shuffle(perm)
    edges: list[tuple[int, int]] = []
    for i in range(n):
        for j in range(i + 1, n):
            if r.random() < p:
                edges.append((perm[i], perm[j]))
    return Dag(n, edges)


def layered_dag(
    layer_sizes: Iterable[int],
    p: float = 0.5,
    rng: random.Random | int | None = None,
    connect_all: bool = False,
) -> Dag:
    """A layered dag with edges only between adjacent layers.

    Parameters
    ----------
    layer_sizes:
        Sizes of consecutive layers; nodes are numbered layer by layer.
    p:
        Probability of each adjacent-layer edge (ignored if
        ``connect_all``).
    connect_all:
        If true, every adjacent-layer pair is an edge (a "barrier" between
        phases, like a BSP superstep boundary).
    """
    r = as_rng(rng)
    sizes = list(layer_sizes)
    offsets = [0]
    for s in sizes:
        offsets.append(offsets[-1] + s)
    n = offsets[-1]
    edges: list[tuple[int, int]] = []
    for li in range(len(sizes) - 1):
        for u in range(offsets[li], offsets[li + 1]):
            for v in range(offsets[li + 1], offsets[li + 2]):
                if connect_all or r.random() < p:
                    edges.append((u, v))
    return Dag(n, edges)


def fork_join_dag(depth: int, fanout: int = 2) -> Dag:
    """A recursive fork/join skeleton of the given depth.

    ``depth == 0`` is a single node.  At depth ``d`` the dag is a fork node,
    ``fanout`` parallel copies of the depth ``d-1`` skeleton, and a join
    node.  This is exactly the dag shape of a Cilk spawn/sync tree, the
    motivating workload of the paper.
    """
    if depth < 0:
        raise ValueError("depth must be >= 0")
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    edges: list[tuple[int, int]] = []
    counter = 0

    def fresh() -> int:
        nonlocal counter
        counter += 1
        return counter - 1

    def build(d: int) -> tuple[int, int]:
        """Return (entry, exit) node ids of a depth-d skeleton."""
        if d == 0:
            u = fresh()
            return u, u
        fork = fresh()
        join_children: list[int] = []
        for _ in range(fanout):
            entry, exit_ = build(d - 1)
            edges.append((fork, entry))
            join_children.append(exit_)
        join = fresh()
        for c in join_children:
            edges.append((c, join))
        return fork, join

    build(depth)
    return Dag(counter, edges)
