"""Exhaustive enumeration of small dags.

The benchmark that regenerates Figure 1 of the paper checks the model
lattice over *every* computation up to a bounded size.  This module
enumerates the dags.

We enumerate dags whose node identity order ``0 < 1 < ... < n-1`` is a
topological order (all edges go from a smaller id to a larger id).  Every
dag is isomorphic to at least one such "ordered" dag, and all the memory
models studied here are invariant under node relabelling, so this
enumeration covers every behaviour while avoiding the factorially many
relabellings.  (Some isomorphism classes appear multiple times — e.g. the
two orientations of a single edge on two nodes — which only costs time,
not soundness.)

Counts of ordered dags: n=1: 1, n=2: 2, n=3: 8, n=4: 64, n=5: 1024
(``2^(n choose 2)``).  A canonicalization pass (:func:`unique_dags`)
deduplicates up to iso for the smallest sizes where that matters.

Edge masks are the unit of work distribution: each ordered dag on ``n``
nodes is identified by an integer mask over the ``C(n, 2)`` candidate
edges, so a contiguous mask range ``[start, stop)`` names a shard of the
enumeration space that any process can regenerate independently (see
:mod:`repro.runtime.parallel`).
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations, permutations
from math import comb
from typing import Iterator

from repro import _caching
from repro.dag.digraph import Dag

__all__ = ["ordered_dags", "unique_dags", "canonical_form", "num_edge_masks"]


def num_edge_masks(n: int) -> int:
    """Number of ordered dags on ``n`` nodes: ``2^(n choose 2)`` edge masks."""
    return 1 << comb(n, 2)


def ordered_dags(n: int, start: int = 0, stop: int | None = None) -> Iterator[Dag]:
    """Yield every dag on ``n`` nodes whose edges satisfy ``u < v``.

    ``start``/``stop`` restrict the enumeration to the edge masks in
    ``[start, stop)`` — the sharding hook used by the parallel sweep
    engine.  The default covers the full range ``[0, 2^(n choose 2))``.
    """
    pairs = list(combinations(range(n), 2))
    m = len(pairs)
    if stop is None:
        stop = 1 << m
    for mask in range(start, stop):
        edges = [pairs[i] for i in range(m) if mask & (1 << i)]
        yield Dag(n, edges)


def canonical_form(dag: Dag) -> frozenset[tuple[int, int]]:
    """A canonical edge set for the isomorphism class of ``dag``.

    Brute-force over all node permutations; only intended for the tiny
    dags (n <= 6) used in exhaustive universes.  The canonical form is the
    lexicographically least sorted edge tuple over all relabellings.

    Memoized: universes revisit the same dag shapes across op labellings
    and sweep rounds, and :class:`Dag` hashes by value, so repeat lookups
    are cache hits even for freshly constructed equal dags.
    """
    if not _caching.ENABLED:
        return _canonical_form_impl(dag)
    return _canonical_form_cached(dag)


def _canonical_form_impl(dag: Dag) -> frozenset[tuple[int, int]]:
    n = dag.num_nodes
    best: tuple[tuple[int, int], ...] | None = None
    for perm in permutations(range(n)):
        relabeled = tuple(sorted((perm[u], perm[v]) for (u, v) in dag.edges))
        if best is None or relabeled < best:
            best = relabeled
    assert best is not None or n == 0
    return frozenset(best or ())


_canonical_form_cached = lru_cache(maxsize=1 << 16)(_canonical_form_impl)


def unique_dags(n: int) -> Iterator[Dag]:
    """Yield one representative per isomorphism class of dags on ``n`` nodes."""
    seen: set[frozenset[tuple[int, int]]] = set()
    for dag in ordered_dags(n):
        key = canonical_form(dag)
        if key not in seen:
            seen.add(key)
            yield dag
