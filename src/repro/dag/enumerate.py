"""Exhaustive enumeration of small dags.

The benchmark that regenerates Figure 1 of the paper checks the model
lattice over *every* computation up to a bounded size.  This module
enumerates the dags.

We enumerate dags whose node identity order ``0 < 1 < ... < n-1`` is a
topological order (all edges go from a smaller id to a larger id).  Every
dag is isomorphic to at least one such "ordered" dag, and all the memory
models studied here are invariant under node relabelling, so this
enumeration covers every behaviour while avoiding the factorially many
relabellings.  (Some isomorphism classes appear multiple times — e.g. the
two orientations of a single edge on two nodes — which only costs time,
not soundness.)

Counts of ordered dags: n=1: 1, n=2: 2, n=3: 8, n=4: 64, n=5: 1024
(``2^(n choose 2)``).  A canonicalization pass (:func:`unique_dags`)
deduplicates up to iso for the smallest sizes where that matters.
"""

from __future__ import annotations

from itertools import combinations, permutations
from typing import Iterator

from repro.dag.digraph import Dag

__all__ = ["ordered_dags", "unique_dags", "canonical_form"]


def ordered_dags(n: int) -> Iterator[Dag]:
    """Yield every dag on ``n`` nodes whose edges satisfy ``u < v``."""
    pairs = list(combinations(range(n), 2))
    m = len(pairs)
    for mask in range(1 << m):
        edges = [pairs[i] for i in range(m) if mask & (1 << i)]
        yield Dag(n, edges)


def canonical_form(dag: Dag) -> frozenset[tuple[int, int]]:
    """A canonical edge set for the isomorphism class of ``dag``.

    Brute-force over all node permutations; only intended for the tiny
    dags (n <= 6) used in exhaustive universes.  The canonical form is the
    lexicographically least sorted edge tuple over all relabellings.
    """
    n = dag.num_nodes
    best: tuple[tuple[int, int], ...] | None = None
    for perm in permutations(range(n)):
        relabeled = tuple(sorted((perm[u], perm[v]) for (u, v) in dag.edges))
        if best is None or relabeled < best:
            best = relabeled
    assert best is not None or n == 0
    return frozenset(best or ())


def unique_dags(n: int) -> Iterator[Dag]:
    """Yield one representative per isomorphism class of dags on ``n`` nodes."""
    seen: set[frozenset[tuple[int, int]]] = set()
    for dag in ordered_dags(n):
        key = canonical_form(dag)
        if key not in seen:
            seen.add(key)
            yield dag
