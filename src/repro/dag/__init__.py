"""Dag substrate: graphs, topological sorts, prefixes, generators.

This subpackage is the graph-theoretic foundation under
:mod:`repro.core`.  It knows nothing about memory operations — it deals
purely with finite dags, their reachability structure, their topological
sorts (``TS(G)`` in the paper), and their prefixes (downsets).
"""

from repro.dag.digraph import Dag, bit_indices, bits
from repro.dag.metrics import (
    level_sizes,
    parallelism,
    span,
    width,
    work,
)
from repro.dag.interop import from_networkx, to_networkx
from repro.dag.enumerate import canonical_form, ordered_dags, unique_dags
from repro.dag.prefixes import (
    all_antichains,
    all_prefix_masks,
    is_antichain,
    is_prefix_mask,
    prefix_closure_mask,
)
from repro.dag.random_dags import (
    chain_dag,
    empty_dag,
    fork_join_dag,
    gnp_dag,
    layered_dag,
)
from repro.dag.sp import (
    SPNode,
    all_sp_trees,
    balanced_sp,
    is_series_parallel,
    leaf,
    parallel,
    random_sp,
    series,
    sp_decompose,
    sp_leaves,
    sp_orders,
    sp_precedes,
    sp_to_dag,
)
from repro.dag.toposort import (
    all_topological_sorts,
    count_topological_sorts,
    is_topological_sort,
    random_topological_sort,
)

__all__ = [
    "Dag",
    "bits",
    "bit_indices",
    "all_topological_sorts",
    "count_topological_sorts",
    "is_topological_sort",
    "random_topological_sort",
    "is_prefix_mask",
    "all_prefix_masks",
    "prefix_closure_mask",
    "all_antichains",
    "is_antichain",
    "gnp_dag",
    "layered_dag",
    "fork_join_dag",
    "chain_dag",
    "empty_dag",
    "ordered_dags",
    "unique_dags",
    "canonical_form",
    "work",
    "span",
    "parallelism",
    "width",
    "level_sizes",
    "to_networkx",
    "from_networkx",
    "SPNode",
    "leaf",
    "series",
    "parallel",
    "sp_to_dag",
    "is_series_parallel",
    "balanced_sp",
    "random_sp",
    "sp_leaves",
    "sp_orders",
    "sp_precedes",
    "all_sp_trees",
    "sp_decompose",
]
