"""Series-parallel dag algebra.

Cilk computations (the paper's motivating workloads) are *series-parallel*:
they are built from single nodes by serial composition (everything in the
first part precedes everything in the second) and parallel composition (no
cross dependencies).  This module provides a small algebra producing
:class:`~repro.dag.digraph.Dag` objects, plus a recognizer.

The algebra composes *node-series* dags: serial composition links every
sink of the left operand to every source of the right operand.  For
single-source/single-sink operands this adds exactly one edge, matching
the usual SP-dag definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.dag.digraph import Dag

__all__ = ["SPNode", "leaf", "series", "parallel", "sp_to_dag", "is_series_parallel"]


@dataclass(frozen=True)
class SPNode:
    """A node of a series-parallel expression tree.

    ``kind`` is ``"leaf"``, ``"series"`` or ``"parallel"``; ``children`` is
    empty for leaves.  ``payload`` is an arbitrary label carried to the dag
    construction (exposed as the leaf order).
    """

    kind: str
    children: tuple["SPNode", ...] = ()
    payload: object | None = None

    def leaf_count(self) -> int:
        """Number of leaves of the expression."""
        if self.kind == "leaf":
            return 1
        return sum(c.leaf_count() for c in self.children)


def leaf(payload: object | None = None) -> SPNode:
    """A single-node SP expression."""
    return SPNode("leaf", (), payload)


def series(*parts: SPNode) -> SPNode:
    """Serial composition: each part entirely precedes the next."""
    if not parts:
        raise ValueError("series() needs at least one part")
    if len(parts) == 1:
        return parts[0]
    return SPNode("series", tuple(parts))


def parallel(*parts: SPNode) -> SPNode:
    """Parallel composition: no dependencies between parts."""
    if not parts:
        raise ValueError("parallel() needs at least one part")
    if len(parts) == 1:
        return parts[0]
    return SPNode("parallel", tuple(parts))


def sp_to_dag(expr: SPNode) -> tuple[Dag, list[object | None]]:
    """Materialize an SP expression as a dag.

    Returns the dag and the list of leaf payloads indexed by node id.
    Leaves are numbered in left-to-right expression order.
    """
    payloads: list[object | None] = []
    edges: list[tuple[int, int]] = []

    def build(e: SPNode) -> tuple[list[int], list[int]]:
        """Return (sources, sinks) node-id lists of the sub-dag."""
        if e.kind == "leaf":
            u = len(payloads)
            payloads.append(e.payload)
            return [u], [u]
        if e.kind == "series":
            srcs, snks = build(e.children[0])
            for child in e.children[1:]:
                csrcs, csnks = build(child)
                for s in snks:
                    for t in csrcs:
                        edges.append((s, t))
                snks = csnks
            return srcs, snks
        if e.kind == "parallel":
            srcs: list[int] = []
            snks: list[int] = []
            for child in e.children:
                csrcs, csnks = build(child)
                srcs.extend(csrcs)
                snks.extend(csnks)
            return srcs, snks
        raise ValueError(f"unknown SP node kind {e.kind!r}")

    build(expr)
    return Dag(len(payloads), edges), payloads


def is_series_parallel(dag: Dag) -> bool:
    """Recognizer for *node* series-parallel dags.

    Uses the forbidden-substructure characterization of Valdes, Tarjan
    and Lawler (1982): a dag is node series-parallel iff its precedence
    order contains no induced "N" — four distinct nodes ``a, b, c, d``
    whose only precedence relations among themselves are
    ``a ≺ c``, ``b ≺ c`` and ``b ≺ d``.

    The check is ``O(n^4)`` with early exits, which is fine for the test
    and verification workloads it serves (confirming for example that
    :mod:`repro.lang.cilk` only generates SP computations).
    """
    n = dag.num_nodes
    lt = dag.precedes
    for b in range(n):
        for d in range(n):
            if d == b or not lt(b, d):
                continue
            for c in range(n):
                if c in (b, d) or not lt(b, c):
                    continue
                if lt(c, d) or lt(d, c):
                    continue
                for a in range(n):
                    if a in (b, c, d) or not lt(a, c):
                        continue
                    if lt(a, d) or lt(d, a):
                        continue
                    if lt(a, b) or lt(b, a):
                        continue
                    return False  # induced N found
    return True


def balanced_sp(depth: int, fanout: int = 2) -> SPNode:
    """A balanced SP expression: serial chains of parallel blocks.

    ``depth == 0`` is a leaf; otherwise ``fanout`` parallel copies of the
    depth ``d-1`` expression, wrapped between a fork leaf and a join leaf.
    Mirrors :func:`repro.dag.random_dags.fork_join_dag`.
    """
    if depth == 0:
        return leaf()
    inner = parallel(*(balanced_sp(depth - 1, fanout) for _ in range(fanout)))
    return series(leaf(), inner, leaf())


def sp_leaves(expr: SPNode) -> list[SPNode]:
    """The leaves of an SP expression in left-to-right order.

    Iterative (explicit stack): unfolded programs can right-nest
    thousands of serial ops, far past the recursion limit.
    """
    out: list[SPNode] = []
    stack = [expr]
    while stack:
        e = stack.pop()
        if e.kind == "leaf":
            out.append(e)
        else:
            stack.extend(reversed(e.children))
    return out


def sp_orders(expr: SPNode) -> tuple[dict[int, int], dict[int, int]]:
    """Two linear extensions realizing the SP order (dimension ≤ 2).

    Series-parallel partial orders are exactly the N-free orders, and
    every such order has dimension at most two.  The realizer is
    constructive: ``fwd`` ranks leaves by the plain left-to-right DFS,
    ``rev`` by the DFS that visits the children of every *parallel*
    node in reverse.  Then for leaves ``u, v``:

    ``u ≺ v  ⟺  fwd[u] < fwd[v]  and  rev[u] < rev[v]``

    and ``u ∥ v`` iff the two orders disagree (see :func:`sp_precedes`).
    Keys are leaf payloads, falling back to the left-to-right leaf index
    when the payload is ``None`` (matching :func:`sp_to_dag`'s node
    numbering).  An O(1) comparability test after an O(n) setup, with
    no transitive closure in sight — the backbone the SP-bags results
    are validated on.  Iterative throughout: unfolded programs nest
    thousands deep.
    """
    # Left-to-right leaf ids and subtree leaf counts (post-order, memo
    # by object identity — shared subtree objects have equal counts).
    counts: dict[int, int] = {}
    stack: list[tuple[SPNode, bool]] = [(expr, False)]
    while stack:
        e, expanded = stack.pop()
        if e.kind == "leaf":
            counts[id(e)] = 1
        elif expanded:
            counts[id(e)] = sum(counts[id(c)] for c in e.children)
        elif id(e) not in counts:
            stack.append((e, True))
            stack.extend((c, False) for c in e.children)

    def leaf_id(e: SPNode, index: int) -> int:
        return index if e.payload is None else int(e.payload)  # type: ignore[call-overload]

    fwd: dict[int, int] = {}
    for i, e in enumerate(sp_leaves(expr)):
        fwd[leaf_id(e, i)] = i

    # Reverse-parallel DFS; each frame carries the left-to-right index
    # of its subtree's leftmost leaf so leaf ids resolve without payloads.
    rev: dict[int, int] = {}
    rank = 0
    walk: list[tuple[SPNode, int]] = [(expr, 0)]
    while walk:
        e, lo = walk.pop()
        if e.kind == "leaf":
            rev[leaf_id(e, lo)] = rank
            rank += 1
            continue
        placed = []
        base = lo
        for c in e.children:
            placed.append((c, base))
            base += counts[id(c)]
        # Stack pops last-pushed first: push in visit order reversed.
        if e.kind == "parallel":
            walk.extend(placed)  # pops right-to-left — the flip
        else:
            walk.extend(reversed(placed))  # pops left-to-right
    return fwd, rev


def sp_precedes(
    orders: tuple[dict[int, int], dict[int, int]], u: int, v: int
) -> bool:
    """Strict SP precedence ``u ≺ v`` from an :func:`sp_orders` realizer."""
    fwd, rev = orders
    return u != v and fwd[u] < fwd[v] and rev[u] < rev[v]


def all_sp_trees(n_leaves: int) -> Iterator[SPNode]:
    """Every binary SP expression shape with the given number of leaves.

    Leaves carry no payloads (so :func:`sp_to_dag` numbers them left to
    right).  Binary compositions suffice: series and parallel are
    associative, so every SP partial order is realized.  The count is
    ``Catalan(n-1) · 2^(n-1)`` — exhaustive universes stay small
    (``n ≤ 5`` → at most 224 shapes).
    """
    if n_leaves < 1:
        raise ValueError("n_leaves must be >= 1")
    if n_leaves == 1:
        yield leaf()
        return
    for split in range(1, n_leaves):
        for left in all_sp_trees(split):
            for right in all_sp_trees(n_leaves - split):
                yield SPNode("series", (left, right))
                yield SPNode("parallel", (left, right))


def sp_decompose(dag: Dag) -> SPNode | None:
    """Recover a series-parallel expression for a dag's precedence order.

    Returns an :class:`SPNode` whose leaf payloads are the dag's node
    ids and whose induced precedence equals ``dag.precedes``, or
    ``None`` if the order is not series-parallel.  Works on the
    *order*, not the edge set, so dags with redundant transitive edges
    (as :mod:`repro.lang.cilk` emits) decompose fine.

    The classic total-decomposition scheme: a parallel split is the
    connected components of the comparability graph; a series split is
    a prefix of a linear extension comparable to everything after it
    (any linear extension lists a valid cut as a prefix, so one sweep
    finds them all).  Splits are taken maximally k-ary, keeping the
    recursion depth proportional to the alternation depth rather than
    the node count.  ``O(n^2)`` per level — intended for verification
    and for computations whose unfolding did not record an SP tree, not
    for the hot path (use :attr:`repro.lang.cilk.UnfoldInfo.sp` there).
    """
    lt = dag.precedes

    def solve(nodes: list[int]) -> SPNode | None:
        if len(nodes) == 1:
            return leaf(nodes[0])
        # Parallel split: components of the comparability graph.
        comp_of: dict[int, int] = {}
        for u in nodes:
            if u in comp_of:
                continue
            comp_of[u] = u
            frontier = [u]
            while frontier:
                a = frontier.pop()
                for b in nodes:
                    if b not in comp_of and (lt(a, b) or lt(b, a)):
                        comp_of[b] = u
                        frontier.append(b)
        groups: dict[int, list[int]] = {}
        for u in nodes:
            groups.setdefault(comp_of[u], []).append(u)
        if len(groups) > 1:
            parts = [solve(g) for g in groups.values()]
            if any(p is None for p in parts):
                return None
            return SPNode("parallel", tuple(parts))  # type: ignore[arg-type]
        # Series split: sweep one linear extension, cutting wherever the
        # prefix is entirely before the rest.
        order = sorted(
            nodes, key=lambda u: sum(1 for v in nodes if lt(v, u))
        )
        segments: list[list[int]] = []
        start = 0
        for k in range(1, len(order)):
            # Earlier segments already precede order[k:], so only the
            # current segment needs checking against the suffix.
            if all(lt(a, b) for a in order[start:k] for b in order[k:]):
                segments.append(order[start:k])
                start = k
        segments.append(order[start:])
        if len(segments) == 1:
            return None  # connected, seriesless, multi-node: an N exists
        parts = [solve(seg) for seg in segments]
        if any(p is None for p in parts):
            return None
        return SPNode("series", tuple(parts))  # type: ignore[arg-type]

    if dag.num_nodes == 0:
        return None
    return solve(list(range(dag.num_nodes)))


def random_sp(
    n_leaves: int, rng_seed: int | None = None
) -> SPNode:
    """A random SP expression with the given number of leaves."""
    import random

    r = random.Random(rng_seed)

    def build(k: int) -> SPNode:
        if k == 1:
            return leaf()
        split = r.randint(1, k - 1)
        left, right = build(split), build(k - split)
        if r.random() < 0.5:
            return series(left, right)
        return parallel(left, right)

    if n_leaves < 1:
        raise ValueError("n_leaves must be >= 1")
    return build(n_leaves)


__all__ += [
    "balanced_sp",
    "random_sp",
    "sp_leaves",
    "sp_orders",
    "sp_precedes",
    "all_sp_trees",
    "sp_decompose",
]
