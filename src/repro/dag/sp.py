"""Series-parallel dag algebra.

Cilk computations (the paper's motivating workloads) are *series-parallel*:
they are built from single nodes by serial composition (everything in the
first part precedes everything in the second) and parallel composition (no
cross dependencies).  This module provides a small algebra producing
:class:`~repro.dag.digraph.Dag` objects, plus a recognizer.

The algebra composes *node-series* dags: serial composition links every
sink of the left operand to every source of the right operand.  For
single-source/single-sink operands this adds exactly one edge, matching
the usual SP-dag definition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dag.digraph import Dag

__all__ = ["SPNode", "leaf", "series", "parallel", "sp_to_dag", "is_series_parallel"]


@dataclass(frozen=True)
class SPNode:
    """A node of a series-parallel expression tree.

    ``kind`` is ``"leaf"``, ``"series"`` or ``"parallel"``; ``children`` is
    empty for leaves.  ``payload`` is an arbitrary label carried to the dag
    construction (exposed as the leaf order).
    """

    kind: str
    children: tuple["SPNode", ...] = ()
    payload: object | None = None

    def leaf_count(self) -> int:
        """Number of leaves of the expression."""
        if self.kind == "leaf":
            return 1
        return sum(c.leaf_count() for c in self.children)


def leaf(payload: object | None = None) -> SPNode:
    """A single-node SP expression."""
    return SPNode("leaf", (), payload)


def series(*parts: SPNode) -> SPNode:
    """Serial composition: each part entirely precedes the next."""
    if not parts:
        raise ValueError("series() needs at least one part")
    if len(parts) == 1:
        return parts[0]
    return SPNode("series", tuple(parts))


def parallel(*parts: SPNode) -> SPNode:
    """Parallel composition: no dependencies between parts."""
    if not parts:
        raise ValueError("parallel() needs at least one part")
    if len(parts) == 1:
        return parts[0]
    return SPNode("parallel", tuple(parts))


def sp_to_dag(expr: SPNode) -> tuple[Dag, list[object | None]]:
    """Materialize an SP expression as a dag.

    Returns the dag and the list of leaf payloads indexed by node id.
    Leaves are numbered in left-to-right expression order.
    """
    payloads: list[object | None] = []
    edges: list[tuple[int, int]] = []

    def build(e: SPNode) -> tuple[list[int], list[int]]:
        """Return (sources, sinks) node-id lists of the sub-dag."""
        if e.kind == "leaf":
            u = len(payloads)
            payloads.append(e.payload)
            return [u], [u]
        if e.kind == "series":
            srcs, snks = build(e.children[0])
            for child in e.children[1:]:
                csrcs, csnks = build(child)
                for s in snks:
                    for t in csrcs:
                        edges.append((s, t))
                snks = csnks
            return srcs, snks
        if e.kind == "parallel":
            srcs: list[int] = []
            snks: list[int] = []
            for child in e.children:
                csrcs, csnks = build(child)
                srcs.extend(csrcs)
                snks.extend(csnks)
            return srcs, snks
        raise ValueError(f"unknown SP node kind {e.kind!r}")

    build(expr)
    return Dag(len(payloads), edges), payloads


def is_series_parallel(dag: Dag) -> bool:
    """Recognizer for *node* series-parallel dags.

    Uses the forbidden-substructure characterization of Valdes, Tarjan
    and Lawler (1982): a dag is node series-parallel iff its precedence
    order contains no induced "N" — four distinct nodes ``a, b, c, d``
    whose only precedence relations among themselves are
    ``a ≺ c``, ``b ≺ c`` and ``b ≺ d``.

    The check is ``O(n^4)`` with early exits, which is fine for the test
    and verification workloads it serves (confirming for example that
    :mod:`repro.lang.cilk` only generates SP computations).
    """
    n = dag.num_nodes
    lt = dag.precedes
    for b in range(n):
        for d in range(n):
            if d == b or not lt(b, d):
                continue
            for c in range(n):
                if c in (b, d) or not lt(b, c):
                    continue
                if lt(c, d) or lt(d, c):
                    continue
                for a in range(n):
                    if a in (b, c, d) or not lt(a, c):
                        continue
                    if lt(a, d) or lt(d, a):
                        continue
                    if lt(a, b) or lt(b, a):
                        continue
                    return False  # induced N found
    return True


def balanced_sp(depth: int, fanout: int = 2) -> SPNode:
    """A balanced SP expression: serial chains of parallel blocks.

    ``depth == 0`` is a leaf; otherwise ``fanout`` parallel copies of the
    depth ``d-1`` expression, wrapped between a fork leaf and a join leaf.
    Mirrors :func:`repro.dag.random_dags.fork_join_dag`.
    """
    if depth == 0:
        return leaf()
    inner = parallel(*(balanced_sp(depth - 1, fanout) for _ in range(fanout)))
    return series(leaf(), inner, leaf())


def random_sp(
    n_leaves: int, rng_seed: int | None = None
) -> SPNode:
    """A random SP expression with the given number of leaves."""
    import random

    r = random.Random(rng_seed)

    def build(k: int) -> SPNode:
        if k == 1:
            return leaf()
        split = r.randint(1, k - 1)
        left, right = build(split), build(k - split)
        if r.random() < 0.5:
            return series(left, right)
        return parallel(left, right)

    if n_leaves < 1:
        raise ValueError("n_leaves must be >= 1")
    return build(n_leaves)


__all__ += ["balanced_sp", "random_sp"]
