"""Structural metrics of computation dags.

These are the quantities the Cilk performance theory (and the BACKER
analysis of [BFJ+96a], cited by the paper) is phrased in:

* **work** ``T₁`` — total number of nodes (unit-cost instructions);
* **span** ``T∞`` (critical-path length) — the longest chain, i.e. the
  execution time on infinitely many processors;
* **parallelism** ``T₁ / T∞`` — the speedup ceiling;
* **width** — the largest antichain, i.e. the peak number of
  simultaneously executable instructions, computed exactly via
  Dilworth's theorem (minimum chain cover = maximum bipartite matching
  on the transitive closure, by König duality).

The scheduler benchmarks use these to check Graham/Brent-style bounds
(``T_P ≤ T₁/P + T∞`` for greedy scheduling) on simulated executions.
"""

from __future__ import annotations

from repro.dag.digraph import Dag, bit_indices

__all__ = [
    "work",
    "span",
    "parallelism",
    "width",
    "level_sizes",
]


def work(dag: Dag) -> int:
    """Total work ``T₁``: the number of nodes."""
    return dag.num_nodes


def span(dag: Dag) -> int:
    """Critical-path length ``T∞`` in *nodes* (0 for the empty dag).

    Dynamic programming over the topological order: the longest chain
    ending at each node.
    """
    n = dag.num_nodes
    if n == 0:
        return 0
    longest = [1] * n
    for u in dag.topological_order:
        for p in dag.predecessors(u):
            if longest[p] + 1 > longest[u]:
                longest[u] = longest[p] + 1
    return max(longest)


def parallelism(dag: Dag) -> float:
    """Average parallelism ``T₁ / T∞`` (0.0 for the empty dag)."""
    s = span(dag)
    return work(dag) / s if s else 0.0


def level_sizes(dag: Dag) -> list[int]:
    """Number of nodes at each depth (longest-chain-to-node) level.

    ``level_sizes(d)[k]`` counts nodes whose longest incoming chain has
    exactly ``k`` predecessors-in-sequence.  A quick "shape profile" of
    the dag used in reports.
    """
    n = dag.num_nodes
    if n == 0:
        return []
    depth = [0] * n
    for u in dag.topological_order:
        for p in dag.predecessors(u):
            depth[u] = max(depth[u], depth[p] + 1)
    out = [0] * (max(depth) + 1)
    for d in depth:
        out[d] += 1
    return out


def width(dag: Dag) -> int:
    """Size of the maximum antichain (Dilworth's theorem, exact).

    Minimum chain cover of the precedence order equals maximum matching
    in the bipartite graph with an edge ``(u, v)`` for every comparable
    pair ``u ≺ v``; the antichain number is ``n - |matching|``.  Uses
    simple augmenting-path matching — ``O(V · E)`` on the closure, fine
    for the dag sizes this library simulates.
    """
    n = dag.num_nodes
    if n == 0:
        return 0
    succ_closure = [list(bit_indices(dag.descendants_mask(u))) for u in range(n)]
    match_right: list[int | None] = [None] * n  # right vertex -> left vertex

    def augment(u: int, seen: list[bool]) -> bool:
        for v in succ_closure[u]:
            if seen[v]:
                continue
            seen[v] = True
            if match_right[v] is None or augment(match_right[v], seen):
                match_right[v] = u
                return True
        return False

    matching = 0
    for u in range(n):
        if augment(u, [False] * n):
            matching += 1
    return n - matching
