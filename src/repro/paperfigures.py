"""The paper's figures as executable objects.

The OCR of the paper preserves the figure *captions and claims* but not
the drawings, so the exact node/edge layouts of Figures 2–4 are
reconstructed here: each figure function returns a (computation,
observer function) pair **mechanically verified** (by the test suite and
the figure benchmarks) to have exactly the membership profile the paper's
body text claims:

* Figure 2 — a 4-node pair **in WW and NW but not WN or NN**.
* Figure 3 — a 4-node pair **in WW and WN but not NW or NN**.
* Figure 4 — a 4-node pair in NN whose augmentation by any non-write
  admits **no** NN extension, witnessing that **NN is not constructible**.
  (The paper phrases this as "unless F writes to the memory location,
  there is no way to extend Φ".)

Two further classic witnesses used by the Figure 1 lattice benchmark:

* :func:`lc_not_sc_pair` — the store-buffer shape separating SC from LC
  (needs two locations).
* :func:`nn_not_lc_pair` — cross-observing concurrent reads separating
  LC from NN (shares its computation with Figure 4).

All node names follow the paper's convention (single letters, ops shown
as ``W``/``R`` on one implicit location ``"x"`` unless stated).
"""

from __future__ import annotations

from repro.core.builder import ComputationBuilder
from repro.core.computation import Computation
from repro.core.observer import ObserverFunction

__all__ = [
    "figure2_pair",
    "figure3_pair",
    "figure4_pair",
    "figure4_blocking_ops",
    "lc_not_sc_pair",
    "nn_not_lc_pair",
    "LOC",
]

LOC = "x"
"""The single implicit location of Figures 2–4."""


def figure2_pair() -> tuple[Computation, ObserverFunction]:
    """A pair in WW ∩ NW but outside WN (hence outside NN).

    Computation (location ``x`` implicit)::

        A: W        C: W (concurrent with the chain)
        |
        B: R   observes C
        |
        D: R   observes A

    The WN violation is the chain ``A ≺ B ≺ D`` with source write ``A``:
    ``Φ(A) = Φ(D) = A`` but ``Φ(B) = C ≠ A``.  NW is satisfied because no
    *write* lies strictly between two same-fiber nodes, and WW because no
    write precedes another write.
    """
    b = ComputationBuilder()
    a = b.write(LOC, name="A")
    rb = b.read(LOC, name="B", after=[a])
    c = b.write(LOC, name="C")
    b.read(LOC, name="D", after=[rb])
    comp = b.build()
    phi = ObserverFunction(
        comp,
        {LOC: (a.node_id, c.node_id, c.node_id, a.node_id)},
    )
    return comp, phi


def figure3_pair() -> tuple[Computation, ObserverFunction]:
    """A pair in WW ∩ WN but outside NW (hence outside NN).

    Computation (location ``x`` implicit)::

        A: W  (concurrent with the chain)
        C: R  observes A
        |
        B: W
        |
        D: R  observes A

    The NW violation is the chain ``C ≺ B ≺ D`` whose *middle* node is the
    write ``B``: ``Φ(C) = Φ(D) = A`` but ``Φ(B) = B ≠ A``.  WN (and WW)
    hold because neither write has a same-fiber observer both before and
    after an intervening node reachable *from the write itself* — ``A``
    has no descendants at all, and nothing after ``B`` observes ``B``.
    """
    b = ComputationBuilder()
    a = b.write(LOC, name="A")
    c = b.read(LOC, name="C")
    w = b.write(LOC, name="B", after=[c])
    b.read(LOC, name="D", after=[w])
    comp = b.build()
    phi = ObserverFunction(
        comp,
        {LOC: (a.node_id, a.node_id, w.node_id, a.node_id)},
    )
    return comp, phi


def figure4_pair() -> tuple[Computation, ObserverFunction]:
    """The non-constructibility witness for NN (Figure 4's left part).

    Computation (location ``x`` implicit)::

        A: W        B: W        (concurrent writes)
        |           |
        C: R        D: R
        observes B  observes A

    Each read observes the *other* chain's write.  The pair is NN-dag
    consistent (every fiber is precedence-convex), but for a final node
    ``F`` succeeding everything:

    * ``Φ(F) = A`` breaks NN via ``A ≺ C ≺ F`` (``Φ(C) = B``);
    * ``Φ(F) = B`` breaks NN via ``B ≺ D ≺ F`` (``Φ(D) = A``);
    * ``Φ(F) = ⊥`` breaks NN via ``⊥ ≺ A ≺ F`` (``Φ(A) = A``),

    so unless ``F`` itself writes ``x``, no extension exists — exactly the
    paper's Figure 4 argument.  The same pair also separates LC from NN
    (see :func:`nn_not_lc_pair`): the two fibers cross, so no per-location
    write serialization exists.
    """
    b = ComputationBuilder()
    a = b.write(LOC, name="A")
    w2 = b.write(LOC, name="B")
    b.read(LOC, name="C", after=[a])
    b.read(LOC, name="D", after=[w2])
    comp = b.build()
    phi = ObserverFunction(
        comp,
        {LOC: (a.node_id, w2.node_id, w2.node_id, a.node_id)},
    )
    return comp, phi


def figure4_blocking_ops() -> list:
    """The ops ``o`` for which ``aug_o`` of the Figure 4 pair has no NN
    extension: every op that does not write the location."""
    from repro.core.ops import N, R, W

    _ = W  # documents the contrast: W(LOC) would *not* block
    return [R(LOC), N]


def nn_not_lc_pair() -> tuple[Computation, ObserverFunction]:
    """A pair in NN but not LC (Theorem 22's strictness).

    Shares the Figure 4 computation: the fibers ``{A, D}`` and ``{B, C}``
    impose contradictory write orders (edge ``A → C`` forces ``A``'s block
    before ``B``'s; edge ``B → D`` forces the opposite), so LC's quotient
    graph has a 2-cycle.
    """
    return figure4_pair()


def lc_not_sc_pair() -> tuple[Computation, ObserverFunction]:
    """The store-buffer pair: in LC but not SC (needs two locations).

    Computation::

        A: W(x) → B: R(y)        C: W(y) → D: R(x)

    with ``Φ(y, B) = ⊥`` and ``Φ(x, D) = ⊥`` (each reader misses the
    other thread's write), while ``B`` sees ``A`` at ``x`` and ``D`` sees
    ``C`` at ``y``.  Any single witnessing sort would need ``B`` before
    ``C`` (to miss ``W(y)``) and ``D`` before ``A`` — contradicting
    ``A ≺ B`` and ``C ≺ D``.  Per location the requirements are
    satisfiable separately, so the pair is location consistent.
    """
    b = ComputationBuilder()
    a = b.write("x", name="A")
    b.read("y", name="B", after=[a])
    c = b.write("y", name="C")
    b.read("x", name="D", after=[c])
    comp = b.build()
    phi = ObserverFunction(
        comp,
        {
            "x": (a.node_id, a.node_id, None, None),
            "y": (None, None, c.node_id, c.node_id),
        },
    )
    return comp, phi
