"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so callers
can catch library-specific failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "CycleError",
    "InvalidComputationError",
    "InvalidObserverError",
    "ScheduleError",
    "MemoryProtocolError",
    "UniverseError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError, ValueError):
    """Raised when runtime configuration is malformed.

    Examples: a non-integer ``REPRO_JOBS`` environment variable.  Also a
    :class:`ValueError` so existing ``except ValueError`` callers (and
    the CLI's clean one-line-error path) keep working.
    """


class CycleError(ReproError):
    """Raised when a graph that must be acyclic contains a cycle."""


class InvalidComputationError(ReproError):
    """Raised when a computation violates Definition 1 of the paper.

    Examples: an op labelling whose domain does not match the node set, or a
    dag edge referencing a node outside the vertex set.
    """


class InvalidObserverError(ReproError):
    """Raised when an observer function violates Definition 2 of the paper.

    The three conditions are: (2.1) every observed node writes the observed
    location; (2.2) a node never precedes the node it observes; (2.3) every
    write observes itself.
    """


class ScheduleError(ReproError):
    """Raised when an execution schedule violates dag precedence."""


class MemoryProtocolError(ReproError):
    """Raised when a simulated memory is driven outside its protocol.

    For example, reading a location through a processor cache that was
    never attached, or reconciling a cache twice without an intervening
    operation.
    """


class UniverseError(ReproError):
    """Raised when a bounded enumeration universe is queried out of range."""
