"""The asyncio HTTP front-end for the trace-checking service.

Stdlib-only (``asyncio.start_server`` plus a minimal HTTP/1.1 reader):
the container policy bans third-party frameworks, and the protocol is
deliberately small —

* ``POST /check`` — body is JSONL, one request per line (bare
  :mod:`repro.io` document or an options envelope, see
  :func:`repro.serve.service.parse_request`).  The response streams
  back as chunked ``application/x-ndjson``: one verdict object per
  line **in completion order**, each carrying its batch ``index``, so
  a client watching a long batch sees verdicts as they land instead of
  waiting for the stragglers.  A W3C ``traceparent`` request header
  joins the whole batch to the caller's trace; every verdict then
  echoes ``trace_id`` and a per-item ``request_id``.
* ``GET /healthz`` — liveness plus service counters and verdict-cache
  occupancy as JSON.

Checking itself runs in a worker thread (the service's process-pool
dispatch loop is blocking); verdicts hop back onto the event loop
through ``call_soon_threadsafe``, so one slow batch never blocks other
connections' accepts.

Graceful shutdown: SIGTERM/SIGINT stop the listener, let every
in-flight request run to completion (the drain the ISSUE requires —
accepted work is never abandoned), then close the pool and return.
The crash-safe journal plus :func:`repro.serve.service.replay_serve_ledger`
covers the impolite case (SIGKILL).
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from typing import Any, Callable, TextIO

from repro import obs
from repro.serve.service import ItemResult, TraceCheckService

__all__ = ["serve_http", "run_batch_file", "MAX_BODY_BYTES"]

MAX_BODY_BYTES = 64 * 1024 * 1024
"""Largest accepted request body (a 1,000-item litmus batch is ~1 MB)."""

_NDJSON = "application/x-ndjson"


def _response(
    status: str, body: bytes, content_type: str = "application/json"
) -> bytes:
    return (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode() + body


def _json_response(status: str, payload: dict) -> bytes:
    return _response(
        status, (json.dumps(payload) + "\n").encode("utf-8")
    )


def _chunk(data: bytes) -> bytes:
    return f"{len(data):x}\r\n".encode() + data + b"\r\n"


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one HTTP/1.1 request; ``None`` on EOF/garbage."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        return None
    method, path = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > MAX_BODY_BYTES:
        raise ValueError(f"content-length {length} out of range")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


async def _stream_batch(
    service: TraceCheckService,
    lines: list[str],
    writer: asyncio.StreamWriter,
    traceparent: str | None = None,
) -> None:
    """Run one batch on a worker thread, streaming verdicts as chunks.

    ``traceparent`` is the inbound trace header, forwarded verbatim;
    the executor thread has no ambient context of its own (contextvars
    do not cross ``run_in_executor``), so the header must travel by
    value into :meth:`TraceCheckService.check_batch`.
    """
    loop = asyncio.get_running_loop()
    queue: asyncio.Queue[ItemResult | None] = asyncio.Queue()

    def on_result(item: ItemResult) -> None:
        loop.call_soon_threadsafe(queue.put_nowait, item)

    writer.write(
        (
            "HTTP/1.1 200 OK\r\n"
            f"Content-Type: {_NDJSON}\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        ).encode()
    )
    await writer.drain()
    task = loop.run_in_executor(
        None,
        lambda: service.check_batch(
            lines, on_result=on_result, traceparent=traceparent
        ),
    )
    task.add_done_callback(
        lambda _: loop.call_soon_threadsafe(queue.put_nowait, None)
    )
    while True:
        item = await queue.get()
        if item is None:
            break
        payload = json.dumps(item.to_json()) + "\n"
        writer.write(_chunk(payload.encode("utf-8")))
        await writer.drain()
    await task  # surface executor exceptions after draining results
    writer.write(b"0\r\n\r\n")
    await writer.drain()


def _health_payload(service: TraceCheckService) -> dict:
    return {
        "status": "ok",
        "batches": service.batches,
        "items": service.items,
        "errors": service.errors,
        "jobs": service.jobs,
        "cache": service.cache.info(),
    }


async def _handle_connection(
    service: TraceCheckService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        try:
            request = await _read_request(reader)
        except (ValueError, asyncio.IncompleteReadError):
            writer.write(
                _json_response(
                    "400 Bad Request", {"error": "malformed request"}
                )
            )
            await writer.drain()
            return
        if request is None:
            return
        method, path, headers, body = request
        path = path.split("?", 1)[0]
        if obs.enabled():
            obs.add("serve.requests")
        if method == "GET" and path in ("/healthz", "/"):
            writer.write(
                _json_response("200 OK", _health_payload(service))
            )
            await writer.drain()
        elif method == "POST" and path == "/check":
            lines = [
                line
                for line in body.decode("utf-8", errors="replace").splitlines()
                if line.strip()
            ]
            await _stream_batch(
                service,
                lines,
                writer,
                traceparent=headers.get("traceparent"),
            )
        else:
            writer.write(
                _json_response(
                    "404 Not Found",
                    {"error": f"no route {method} {path}"},
                )
            )
            await writer.drain()
    except (ConnectionError, BrokenPipeError):
        pass  # client went away mid-stream; the batch still completes
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass


async def serve_http(
    service: TraceCheckService,
    host: str = "127.0.0.1",
    port: int = 8533,
    *,
    ready: Callable[[str, int], None] | None = None,
    stop_event: asyncio.Event | None = None,
    install_signal_handlers: bool = True,
    log: TextIO | None = None,
) -> None:
    """Serve until SIGTERM/SIGINT (or ``stop_event``), then drain.

    ``ready(host, port)`` fires with the *actual* bound port once the
    listener is up (``port=0`` binds an ephemeral port); by default the
    bound address is also announced on ``log`` (stderr) so callers —
    tests, the smoke job, humans — can discover it.  Shutdown closes
    the listener first, then awaits every in-flight connection (each a
    tracked task), then shuts the process pool down; accepted batches
    always finish and the journal records them.
    """
    log = sys.stderr if log is None else log
    stop = stop_event or asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: list[signal.Signals] = []
    if install_signal_handlers:
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
                installed.append(sig)
            except (NotImplementedError, ValueError, RuntimeError):
                pass  # non-main thread or exotic platform

    active: set[asyncio.Task] = set()

    async def client_connected(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            active.add(task)
            task.add_done_callback(active.discard)
        await _handle_connection(service, reader, writer)

    server = await asyncio.start_server(client_connected, host, port)
    bound_port = server.sockets[0].getsockname()[1]
    print(
        f"repro serve: listening on http://{host}:{bound_port}/ "
        f"(jobs={service.jobs})",
        file=log,
        flush=True,
    )
    if ready is not None:
        ready(host, bound_port)
    try:
        await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        if active:
            print(
                f"repro serve: draining {len(active)} in-flight "
                f"request(s)",
                file=log,
                flush=True,
            )
            await asyncio.gather(*active, return_exceptions=True)
        for sig in installed:
            loop.remove_signal_handler(sig)
        service.close()
        print("repro serve: drained, shutting down", file=log, flush=True)


def run_batch_file(
    service: TraceCheckService,
    in_path: str,
    out_path: str = "-",
    log: TextIO | None = None,
) -> int:
    """Offline batch mode: check a JSONL file, write verdicts as JSONL.

    Verdict lines come out in batch order (the streaming front-end's
    completion order matters for interactive clients; a file does not
    race itself).  Returns 0 even when individual items error — the
    per-item ``ok`` field is the authoritative signal, and a batch
    checker that aborts on the first malformed line would be useless
    against machine-generated input.
    """
    log = sys.stderr if log is None else log
    with open(in_path, "r", encoding="utf-8") as f:
        lines = [line for line in f if line.strip()]
    results = service.check_batch(lines, label=in_path)
    out: Any
    if out_path == "-":
        out = sys.stdout
    else:
        out = open(out_path, "w", encoding="utf-8")
    try:
        for item in sorted(results, key=lambda r: r.index):
            out.write(json.dumps(item.to_json()) + "\n")
    finally:
        if out is not sys.stdout:
            out.close()
    errors = sum(1 for r in results if not r.verdict.get("ok"))
    cached = sum(1 for r in results if r.cached)
    print(
        f"repro serve: {len(results)} item(s) checked "
        f"({cached} dedupe hit(s), {errors} error(s))",
        file=log,
        flush=True,
    )
    return 0
