"""The trace-checking service engine.

One request = one JSONL line: either a bare :mod:`repro.io` document
(``repro/trace``, ``repro/partial-observer``, ``repro/computation``,
``repro/observer``) or an envelope ``{"document": ..., "checks": [...],
"sanitize": ..., "rules": [...]}`` overriding the server's default
:class:`CheckOptions` for that item.

Deduplication is by *canonical fingerprint*: for small dags the
request's ``(edges, ops, constraints, schedule)`` tuple is minimized
jointly over all node relabellings (anchored on
:func:`repro.dag.enumerate.canonical_form`, which fixes the canonical
edge set), so isomorphic resubmissions — the common shape of generated
litmus batches — hit the verdict cache even when node ids differ.  The
cache entry remembers the first request's canonical permutation, and a
hit from a *relabelled* twin has its witness node ids translated into
the new request's id space (the same translation discipline as
:meth:`repro.verify.streaming.StreamingViolation.translated`).  Larger
dags fall back to the exact fingerprint: only identical resubmissions
dedupe, which is still the dominant case and never unsound.

Checking runs in a persistent process pool initialized with the sweep
engine's heartbeat channel (:func:`repro.runtime.parallel._init_pool_worker`),
so the installed :class:`~repro.runtime.parallel.SweepMonitor` — and
through it the ``--journal`` spool and ``--live`` board — sees serve
workers exactly like sweep workers, stall watchdog included.

Crash safety: every accepted batch writes a ``serve_batch`` journal
record, every finished item a ``serve_item``, and every completed batch
a ``serve_batch_done``; :func:`replay_serve_ledger` folds a journal —
even one torn by ``kill -9`` — into a consistent ledger of completed
work.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro import obs
from repro.errors import ReproError
from repro.obs import context as trace_context
from repro.obs.context import TraceContext
from repro.io import (
    FormatError,
    load_computation,
    load_observer,
    load_partial_observer,
    load_trace,
)

__all__ = [
    "KNOWN_CHECKS",
    "CANON_NODE_LIMIT",
    "CheckOptions",
    "ItemResult",
    "TraceCheckService",
    "VerdictCache",
    "check_document",
    "parse_request",
    "parse_request_ex",
    "replay_serve_ledger",
    "request_fingerprint",
]

KNOWN_CHECKS = ("lc", "sc", "streaming")
"""The model checks a request may ask for."""

CANON_NODE_LIMIT = 7
"""Largest dag canonicalized by brute force for isomorphism dedupe.

Past this the fingerprint is exact (same bound regime as
:func:`repro.dag.enumerate.canonical_form`): only identical
resubmissions dedupe, never a wrong merge.
"""

_LOADERS = {
    "repro/computation": load_computation,
    "repro/observer": load_observer,
    "repro/partial-observer": load_partial_observer,
    "repro/trace": load_trace,
}


# ----------------------------------------------------------------------
# Request options and parsing
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CheckOptions:
    """What to run against one document.

    ``checks`` picks among :data:`KNOWN_CHECKS`; ``sc`` is skipped
    (verdict ``null``) on documents above ``sc_node_limit`` nodes — the
    SC decision is exponential and a service must not let one oversized
    request starve the pool.  ``sanitize`` replays traces through
    :class:`repro.verify.sanitizer.TraceSanitizer`; ``rules`` names
    :mod:`repro.analysis` rule ids/prefixes to run per item.
    """

    checks: tuple[str, ...] = ("lc", "sc", "streaming")
    sanitize: bool = False
    rules: tuple[str, ...] = ()
    sc_node_limit: int = 12

    def __post_init__(self) -> None:
        unknown = [c for c in self.checks if c not in KNOWN_CHECKS]
        if unknown:
            raise ValueError(
                f"unknown checks {unknown!r} (known: {', '.join(KNOWN_CHECKS)})"
            )

    @classmethod
    def merged(cls, data: dict, base: "CheckOptions") -> "CheckOptions":
        """``base`` overridden by an envelope's option fields."""
        checks = data.get("checks")
        rules = data.get("rules")
        return cls(
            checks=tuple(checks) if checks is not None else base.checks,
            sanitize=bool(data.get("sanitize", base.sanitize)),
            rules=tuple(rules) if rules is not None else base.rules,
            sc_node_limit=int(data.get("sc_node_limit", base.sc_node_limit)),
        )

    def key(self) -> tuple:
        """The options' contribution to the dedupe fingerprint."""
        return (
            tuple(sorted(set(self.checks))),
            self.sanitize,
            tuple(sorted(set(self.rules))),
            self.sc_node_limit,
        )


def parse_request_ex(
    line: str, defaults: CheckOptions
) -> tuple[dict, CheckOptions, str | None]:
    """One JSONL line → ``(document, effective options, traceparent)``.

    A dict with a ``"document"`` key (and no ``"format"`` tag of its
    own) is an option-carrying envelope; anything else must be a bare
    :mod:`repro.io` document.  An envelope may carry a ``"trace"``
    field — a ``traceparent`` string joining this *item* to a caller's
    existing trace independently of the batch's transport header (the
    JSONL-over-stdin analog of the HTTP header).  Raises
    :class:`repro.io.FormatError` or ``ValueError`` on malformed input
    — per-item, so one bad line never poisons its batch.
    """
    data = json.loads(line)
    if not isinstance(data, dict):
        raise FormatError("request line is not a JSON object")
    trace: str | None = None
    if "document" in data and "format" not in data:
        doc = data["document"]
        options = CheckOptions.merged(data, defaults)
        raw_trace = data.get("trace")
        if isinstance(raw_trace, str):
            trace = raw_trace
    else:
        doc, options = data, defaults
    if not isinstance(doc, dict) or "format" not in doc:
        raise FormatError("not a repro document (missing format tag)")
    if doc["format"] not in _LOADERS:
        raise FormatError(f"unknown format {doc['format']!r}")
    return doc, options, trace


def parse_request(
    line: str, defaults: CheckOptions
) -> tuple[dict, CheckOptions]:
    """:func:`parse_request_ex` without the trace field (stable API)."""
    doc, options, _ = parse_request_ex(line, defaults)
    return doc, options


def _load_document(doc: dict) -> Any:
    return _LOADERS[doc["format"]](doc)


# ----------------------------------------------------------------------
# Canonical fingerprinting
# ----------------------------------------------------------------------


def _signature_parts(obj: Any) -> tuple[Any, tuple, tuple]:
    """``(comp, constraint triples, per-node schedule rows)`` of a
    parsed document — everything the verdict may depend on."""
    from repro.core.computation import Computation
    from repro.core.observer import ObserverFunction
    from repro.runtime.trace import ExecutionTrace, PartialObserver

    if isinstance(obj, ExecutionTrace):
        po = obj.partial_observer()
        sched = obj.schedule
        rows = tuple(
            (sched.proc_of[u], sched.start_of[u])
            for u in range(obj.comp.num_nodes)
        )
        return obj.comp, tuple(po.entries()), rows
    if isinstance(obj, PartialObserver):
        return obj.comp, tuple(obj.entries()), ()
    if isinstance(obj, ObserverFunction):
        triples = tuple(
            (loc, u, obj.value(loc, u))
            for loc in obj.locations()
            for u in range(obj.comp.num_nodes)
        )
        return obj.comp, triples, ()
    if isinstance(obj, Computation):
        return obj, (), ()
    raise FormatError(f"cannot fingerprint {type(obj).__name__!r}")


def request_fingerprint(
    obj: Any, options: CheckOptions
) -> tuple[tuple, tuple[int, ...]]:
    """``(cache key, canonical permutation)`` for one parsed request.

    The permutation maps the request's node ids to canonical ids; it is
    the identity whenever the dag is above :data:`CANON_NODE_LIMIT`
    (exact-match fingerprint) or the request already sits in canonical
    labelling.  Two requests share a key **iff** they are isomorphic as
    constrained, scheduled computations under the same options — so a
    cache hit is always sound, and witnesses translate through the two
    permutations.
    """
    comp, triples, rows = _signature_parts(obj)
    n = comp.num_nodes
    edges = sorted(comp.dag.edges)
    ops_sig = tuple((op.kind, repr(op.loc)) for op in comp.ops)
    cons = tuple(
        sorted((repr(loc), u, v) for loc, u, v in triples)
    )
    identity = tuple(range(n))
    if n > CANON_NODE_LIMIT:
        key = ("exact", n, tuple(edges), ops_sig, cons, rows, options.key())
        return key, identity

    from repro.dag.enumerate import canonical_form

    canon_edges = tuple(sorted(canonical_form(comp.dag)))
    best: tuple | None = None
    best_perm = identity
    for perm in itertools.permutations(range(n)):
        e = tuple(sorted((perm[a], perm[b]) for a, b in edges))
        if e != canon_edges:
            continue
        new_ops: list = [None] * n
        new_rows: list = [None] * n if rows else []
        for u in range(n):
            new_ops[perm[u]] = ops_sig[u]
            if rows:
                new_rows[perm[u]] = rows[u]
        c = tuple(
            sorted(
                (loc, perm[u], None if v is None else perm[v])
                for loc, u, v in cons
            )
        )
        cand = (tuple(new_ops), c, tuple(new_rows))
        if best is None or cand < best:
            best, best_perm = cand, perm
    assert best is not None  # identity always achieves canon_edges's class
    key = ("canon", n, canon_edges) + best + (options.key(),)
    return key, best_perm


def _compose_remap(
    perm_cached: Sequence[int], perm_request: Sequence[int]
) -> list[int] | None:
    """Node map from the cached request's ids to this request's ids.

    Both permutations map original → canonical; the composite is
    ``inverse(perm_request) ∘ perm_cached``.  ``None`` means identity.
    """
    if tuple(perm_cached) == tuple(perm_request):
        return None
    inv_req = [0] * len(perm_request)
    for u, c in enumerate(perm_request):
        inv_req[c] = u
    return [inv_req[perm_cached[u]] for u in range(len(perm_cached))]


def _remap_verdict(verdict: dict, remap: Sequence[int]) -> dict:
    """The cached verdict with node ids translated into a relabelled
    twin's id space (witness and SC-order fields only — callers gate
    non-translatable payloads out of the isomorphic-hit path)."""
    from repro.verify.streaming import _render_reason

    out = dict(verdict)
    witness = out.get("witness")
    if isinstance(witness, dict):
        w = dict(witness)
        if isinstance(w.get("node"), int):
            w["node"] = remap[w["node"]]
        if isinstance(w.get("blocks"), list):
            w["blocks"] = [
                None if b is None else remap[b] for b in w["blocks"]
            ]
            # The prose names block ids too; re-render it from the
            # remapped blocks so no stale id survives the translation.
            w["reason"] = _render_reason(tuple(w["blocks"]))
        out["witness"] = w
    if isinstance(out.get("sc_witness"), list):
        out["sc_witness"] = [remap[u] for u in out["sc_witness"]]
    return out


# ----------------------------------------------------------------------
# Verdict cache
# ----------------------------------------------------------------------


class VerdictCache:
    """A bounded LRU of ``fingerprint → (verdict, permutation)``.

    ``capacity <= 0`` disables caching (every lookup misses).  Entries
    store the verdict in the *first* request's original node ids plus
    that request's canonical permutation, so hits from relabelled twins
    can translate witnesses.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple, tuple[dict, tuple[int, ...]]] = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> tuple[dict, tuple[int, ...]] | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(
        self, key: tuple, verdict: dict, perm: tuple[int, ...]
    ) -> None:
        if self.capacity <= 0:
            return
        self._entries[key] = (verdict, perm)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def info(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "currsize": len(self._entries),
            "capacity": self.capacity,
        }


# ----------------------------------------------------------------------
# The per-document checker (runs in pool workers)
# ----------------------------------------------------------------------


def _serve_heartbeat(items_done: int, elapsed: float) -> None:
    """Emit a worker heartbeat over the sweep engine's channel, if one
    was installed by the pool initializer (silently optional)."""
    from repro.runtime import parallel

    hb_state = parallel._HB
    if hb_state is None:
        return
    hb = {
        "pid": os.getpid(),
        "serve": True,
        "pairs_done": items_done,
        "elapsed": round(elapsed, 6),
    }
    ctx = trace_context.current()
    if ctx is not None and ctx.sampled:
        hb["trace_id"] = ctx.trace_id
        if ctx.span_id:
            hb["span_id"] = ctx.span_id
    hb_queue = hb_state.get("queue")
    if hb_queue is not None:
        try:
            hb_queue.put_nowait(hb)
        except Exception:
            pass
    else:
        monitor = hb_state.get("monitor")
        if monitor is not None:
            monitor.on_worker_heartbeat(hb)


_WORKER_ITEMS = 0


def check_document(
    doc: dict, options: CheckOptions, trace: tuple | None = None
) -> dict:
    """Check one document; the picklable unit of pool work.

    Returns a verdict dict (see the README protocol section): always
    ``ok`` and ``seconds``; on success ``kind``, per-check ``verdicts``
    (``true``/``false``/``null`` = skipped), the conjunction
    ``admitted``, and any ``witness`` / ``sc_witness`` / ``sanitizer``
    / ``findings`` payloads.  Malformed documents come back as
    ``{"ok": false, "error": ...}`` — a worker never raises for bad
    input, so one poisoned item cannot break its batch.

    ``trace`` is the item's propagated context as a
    :meth:`TraceContext.as_tuple` tuple (``span_id`` = the item's own
    request span, ``parent_span_id`` = the serve batch span).  When
    sampled it is re-activated around the check — so the heartbeat
    below carries the trace id — and the verdict gains a transient
    ``_worker_span`` payload identifying this process's execution; the
    parent pops it before caching/streaming and grafts it into the
    live trace, which is how a request's span tree crosses the pool's
    fork boundary.
    """
    global _WORKER_ITEMS
    ctx: TraceContext | None = None
    if trace is not None:
        ctx = TraceContext.from_tuple(trace)
        if not ctx.sampled:
            ctx = None
    t0 = time.perf_counter()
    activation = (
        trace_context.activate(ctx) if ctx is not None else nullcontext()
    )
    with activation:
        try:
            obj = _load_document(doc)
            verdict = _check_object(obj, options)
        except (ReproError, ValueError, KeyError, TypeError, IndexError) as exc:
            verdict = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        else:
            verdict["ok"] = True
        verdict["seconds"] = round(time.perf_counter() - t0, 6)
        _WORKER_ITEMS += 1
        _serve_heartbeat(_WORKER_ITEMS, verdict["seconds"])
    if ctx is not None:
        verdict["_worker_span"] = {
            "trace_id": ctx.trace_id,
            "span_id": ctx.span_id,
            "parent_span_id": ctx.parent_span_id,
            "pid": os.getpid(),
            "seconds": verdict["seconds"],
        }
    return verdict


def _admitted(verdicts: dict[str, bool | None]) -> bool | None:
    booleans = [v for v in verdicts.values() if isinstance(v, bool)]
    if not booleans:
        return None
    return all(booleans)


def _check_object(obj: Any, options: CheckOptions) -> dict:
    from repro.core.computation import Computation
    from repro.core.observer import ObserverFunction
    from repro.runtime.trace import ExecutionTrace, PartialObserver

    if isinstance(obj, ExecutionTrace):
        return _check_trace(obj, options)
    if isinstance(obj, PartialObserver):
        out = {"kind": "partial-observer"}
        out["verdicts"] = _model_verdicts(obj, options, obj.comp.num_nodes)
        out["admitted"] = _admitted(out["verdicts"])
        return out
    if isinstance(obj, ObserverFunction):
        return _check_observer(obj, options)
    if isinstance(obj, Computation):
        out = {"kind": "computation", "verdicts": {}, "admitted": None}
        if options.rules:
            out["findings"] = _run_rules(obj, None, options)
        return out
    raise FormatError(f"cannot check {type(obj).__name__!r}")


def _model_verdicts(
    partial: Any, options: CheckOptions, num_nodes: int
) -> dict[str, bool | None]:
    from repro.verify import trace_admits_lc, trace_admits_sc

    verdicts: dict[str, bool | None] = {}
    if "lc" in options.checks:
        verdicts["lc"] = trace_admits_lc(partial)
    if "sc" in options.checks:
        if num_nodes <= options.sc_node_limit:
            verdicts["sc"] = trace_admits_sc(partial) is not None
        else:
            verdicts["sc"] = None
    return verdicts


def _check_trace(trace: Any, options: CheckOptions) -> dict:
    from repro.verify import trace_admits_lc, trace_admits_sc
    from repro.verify.streaming import StreamingLCVerifier

    comp = trace.comp
    partial = trace.partial_observer()
    out: dict[str, Any] = {"kind": "trace", "nodes": comp.num_nodes}
    verdicts: dict[str, bool | None] = {}
    if "streaming" in options.checks:
        violation = StreamingLCVerifier.check_trace(trace)
        verdicts["streaming"] = violation is None
        if violation is not None:
            out["witness"] = {
                "node": violation.node,
                "loc": repr(violation.loc),
                "reason": violation.reason,
                "blocks": list(violation.blocks),
            }
    if "lc" in options.checks:
        verdicts["lc"] = trace_admits_lc(partial)
    if "sc" in options.checks:
        if comp.num_nodes <= options.sc_node_limit:
            witness = trace_admits_sc(partial)
            verdicts["sc"] = witness is not None
            if witness is not None:
                out["sc_witness"] = list(witness)
        else:
            verdicts["sc"] = None
    out["verdicts"] = verdicts
    out["admitted"] = _admitted(verdicts)
    if options.sanitize:
        from repro.verify.sanitizer import TraceSanitizer

        out["sanitizer"] = [
            {
                "node": v.node,
                "loc": repr(v.loc),
                "observed": v.observed,
                "reason": v.reason,
                "witness": list(v.witness),
                "event_index": v.event_index,
            }
            for v in TraceSanitizer.collect_violations(trace)
        ]
    if options.rules:
        out["findings"] = _run_rules(comp, trace, options)
    return out


def _check_observer(phi: Any, options: CheckOptions) -> dict:
    from repro.models import LC, SC

    comp = phi.comp
    verdicts: dict[str, bool | None] = {}
    if "lc" in options.checks:
        verdicts["lc"] = LC.contains(comp, phi)
    if "sc" in options.checks:
        if comp.num_nodes <= options.sc_node_limit:
            verdicts["sc"] = SC.contains(comp, phi)
        else:
            verdicts["sc"] = None
    return {
        "kind": "observer",
        "verdicts": verdicts,
        "admitted": _admitted(verdicts),
    }


def _run_rules(comp: Any, trace: Any, options: CheckOptions) -> list[dict]:
    from repro.analysis.registry import (
        AnalysisContext,
        run_analysis,
        select_rules,
    )

    rules = select_rules(options.rules)
    ctx = AnalysisContext(
        comp,
        target="<serve>",
        trace=trace,
        explicit=frozenset(r.id for r in rules),
    )
    report = run_analysis(ctx, rules)
    return [f.to_dict() for f in report.findings]


def _discard_heartbeats(hb_queue: Any) -> None:
    """Drain the worker heartbeat queue with no monitor installed —
    an undrained queue grows for the lifetime of the service."""
    import queue as queue_mod

    while True:
        try:
            hb_queue.get_nowait()
        except queue_mod.Empty:
            return
        except (OSError, ValueError, EOFError):
            return


# ----------------------------------------------------------------------
# The batch service
# ----------------------------------------------------------------------


@dataclass
class ItemResult:
    """One request's outcome, in batch order.

    ``cached`` marks dedupe hits (verdict served from the LRU or from a
    duplicate earlier in the same batch); ``verdict`` is the
    :func:`check_document` dict, witness ids already in *this*
    request's node-id space.

    ``trace_id``/``request_id`` are the item's correlation ids (the
    request id is the item's span id).  They live *here*, never inside
    ``verdict``: the verdict dict is what the dedupe cache stores, and
    a cached twin must get its own ids, not the first requester's.
    """

    index: int
    verdict: dict
    cached: bool = False
    trace_id: str = ""
    request_id: str = ""

    def to_json(self) -> dict:
        out: dict[str, Any] = {"index": self.index, "cached": self.cached}
        if self.trace_id:
            out["trace_id"] = self.trace_id
        if self.request_id:
            out["request_id"] = self.request_id
        out.update(self.verdict)
        return out


@dataclass
class _PendingItem:
    index: int
    doc: dict
    options: CheckOptions
    key: tuple | None = None
    perm: tuple[int, ...] = ()
    translatable: bool = True
    ctx: TraceContext | None = None


class TraceCheckService:
    """The long-running batch checker behind ``repro serve``.

    Owns a persistent process pool (created lazily, recreated after a
    crash) whose workers heartbeat over the sweep engine's channel; an
    installed :class:`~repro.runtime.parallel.SweepMonitor` receives
    ``on_sweep_start`` / heartbeats / ``on_sweep_done`` per batch plus
    stall warnings, exactly as for enumeration sweeps.  ``check_batch``
    is serialized by an internal lock — concurrent HTTP posts queue up
    rather than interleave on the pool.

    ``clear_caches_every=N`` calls
    :func:`repro.runtime.parallel.clear_sweep_caches` after every N
    batches (0 = never): the memoization layer pins whole computations,
    and a service must bound that footprint explicitly.
    """

    def __init__(
        self,
        options: CheckOptions | None = None,
        jobs: int | None = None,
        cache_size: int = 4096,
        clear_caches_every: int = 0,
        trace_sample_rate: float = 1.0,
    ) -> None:
        from repro.runtime.parallel import effective_jobs

        self.options = options or CheckOptions()
        self.jobs = effective_jobs(jobs)
        self.cache = VerdictCache(cache_size)
        self.clear_caches_every = clear_caches_every
        #: Head-sampling rate for *generated* trace contexts (requests
        #: arriving with their own ``traceparent`` keep the caller's
        #: sampling decision).  Ids are minted either way — verdicts
        #: always echo ``trace_id``/``request_id`` — but unsampled
        #: requests skip spans, exemplars and worker-span payloads.
        self.trace_sample_rate = float(trace_sample_rate)
        self.batches = 0
        self.items = 0
        self.errors = 0
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        self._hb_queue: Any | None = None

    # -- pool lifecycle -------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        from repro.runtime.parallel import (
            _init_pool_worker,
            heartbeat_interval,
        )

        if self._pool is None:
            import multiprocessing

            interval = heartbeat_interval()
            try:
                ctx = multiprocessing.get_context()
                self._hb_queue = ctx.Queue()
            except (OSError, ValueError):
                self._hb_queue = None
            from repro.obs import profile as obs_profile

            profile_spec = obs_profile.worker_spec()
            if self._hb_queue is not None or profile_spec is not None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    initializer=_init_pool_worker,
                    initargs=(self._hb_queue, interval, profile_spec),
                )
            else:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def _teardown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._hb_queue is not None:
            self._hb_queue.close()
            self._hb_queue.cancel_join_thread()
            self._hb_queue = None

    def close(self) -> None:
        """Drain and shut the pool down (idempotent)."""
        with self._lock:
            self._teardown_pool()

    def __enter__(self) -> "TraceCheckService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- journal hooks --------------------------------------------------

    @staticmethod
    def _journal() -> Any | None:
        return obs.get().journal if obs.enabled() else None

    def _record(self, kind: str, **fields: Any) -> None:
        journal = self._journal()
        if journal is not None and not journal.closed:
            journal.record(kind, **fields)

    # -- the batch ------------------------------------------------------

    def check_batch(
        self,
        lines: Iterable[str],
        on_result: Callable[[ItemResult], None] | None = None,
        label: str = "batch",
        traceparent: str | None = None,
    ) -> list[ItemResult]:
        """Check one batch of JSONL request lines.

        Results stream to ``on_result`` in completion order (dedupe
        hits and parse errors first, pool completions as they land) and
        come back as a list sorted by batch index.  The journal gets
        one ``serve_batch`` record up front — before any work, so a
        SIGKILL mid-batch still replays to "batch N accepted, K of M
        items done" — then one ``serve_item`` per completion and a
        closing ``serve_batch_done``.

        ``traceparent`` is the transport's inbound trace header (the
        HTTP front-end forwards it verbatim); it — or a per-item
        ``"trace"`` envelope field — joins this batch to the caller's
        trace, so every verdict, journal record and worker span carries
        the caller's ``trace_id``.
        """
        with self._lock:
            return self._check_batch_locked(
                lines, on_result, label, traceparent
            )

    def _check_batch_locked(
        self,
        lines: Iterable[str],
        on_result: Callable[[ItemResult], None] | None,
        label: str,
        traceparent: str | None,
    ) -> list[ItemResult]:
        # Mint the batch's trace context: the inbound header wins, else
        # any ambient context (the CLI's REPRO_TRACEPARENT root in
        # offline mode), else a generated one under the head-sampling
        # rate.  The serve.batch span (when tracing) annotates itself
        # from this context and becomes the parent of every item span.
        if traceparent:
            batch_ctx = trace_context.mint(
                traceparent, self.trace_sample_rate
            )
        else:
            batch_ctx = trace_context.current() or trace_context.mint(
                None, self.trace_sample_rate
            )
        requests = list(lines)
        with trace_context.activate(batch_ctx):
            with obs.span(
                "serve.batch", items=len(requests), label=label
            ):
                return self._run_batch(requests, on_result, label)

    def _run_batch(
        self,
        requests: list[str],
        on_result: Callable[[ItemResult], None] | None,
        label: str,
    ) -> list[ItemResult]:
        t0 = time.perf_counter()
        batch_id = self.batches
        self.batches += 1
        base_ctx = trace_context.current()
        if base_ctx is None:  # activate() in the caller guarantees one
            base_ctx = trace_context.mint(None)
        self._record(
            "serve_batch",
            batch=batch_id,
            items=len(requests),
            label=label,
            trace_id=base_ctx.trace_id,
            span_id=base_ctx.span_id,
        )
        if obs.enabled():
            obs.add("serve.batches")
            obs.add("serve.items", len(requests))

        results: list[ItemResult | None] = [None] * len(requests)
        done_count = 0
        # Every item gets its own context — span_id doubles as the
        # request id — minted up front so parse errors, dedupe hits and
        # pool completions all echo ids on exactly the same terms.
        item_ctxs: dict[int, TraceContext] = {}

        def finish(item: ItemResult) -> None:
            nonlocal done_count
            ctx = item_ctxs.get(item.index)
            if ctx is not None:
                item.trace_id = ctx.trace_id
                item.request_id = ctx.span_id
            results[item.index] = item
            done_count += 1
            ok = bool(item.verdict.get("ok"))
            admitted = item.verdict.get("admitted")
            self.items += 1
            if not ok:
                self.errors += 1
            if obs.enabled():
                if not ok:
                    obs.add("serve.errors")
                elif admitted is True:
                    obs.add("serve.verdicts.admitted")
                elif admitted is False:
                    obs.add("serve.verdicts.rejected")
                if item.cached:
                    obs.add("serve.dedupe.hits")
                else:
                    obs.add("serve.dedupe.misses")
                obs.observe(
                    "serve.check_seconds",
                    float(item.verdict.get("seconds", 0.0)),
                )
            self._record(
                "serve_item",
                batch=batch_id,
                index=item.index,
                ok=ok,
                admitted=admitted,
                cached=item.cached,
                doc_kind=item.verdict.get("kind"),
                seconds=item.verdict.get("seconds"),
                trace_id=item.trace_id,
                request_id=item.request_id,
            )
            if on_result is not None:
                on_result(item)

        # Phase 1: parse, fingerprint, dedupe.  ``waiting`` maps a
        # fingerprint to the items riding on its first occurrence.
        unique: list[_PendingItem] = []
        waiting: dict[tuple, list[_PendingItem]] = {}
        for index, line in enumerate(requests):
            item_ctxs[index] = base_ctx.child()
            try:
                doc, options, env_trace = parse_request_ex(
                    line, self.options
                )
            except (ReproError, ValueError, TypeError) as exc:
                finish(
                    ItemResult(
                        index,
                        {
                            "ok": False,
                            "error": f"{type(exc).__name__}: {exc}",
                            "seconds": 0.0,
                        },
                    )
                )
                continue
            if env_trace is not None:
                # A per-item traceparent overrides the batch context:
                # this item's span joins the caller's own trace.
                env_ctx = trace_context.parse_traceparent(env_trace)
                if env_ctx is not None:
                    item_ctxs[index] = env_ctx.child()
            item = _PendingItem(index, doc, options)
            item.ctx = item_ctxs[index]
            # Witness translation across relabelled twins covers the
            # core verdict payload only; sanitizer/analysis output
            # embeds ids in prose, so those items dedupe exactly.
            item.translatable = not (options.sanitize or options.rules)
            try:
                obj = _load_document(doc)
                item.key, item.perm = request_fingerprint(obj, options)
            except (ReproError, ValueError, TypeError, KeyError) as exc:
                finish(
                    ItemResult(
                        index,
                        {
                            "ok": False,
                            "error": f"{type(exc).__name__}: {exc}",
                            "seconds": 0.0,
                        },
                    )
                )
                continue
            entry = self.cache.get(item.key)
            if entry is not None and self._serve_hit(entry, item, finish):
                continue
            if item.key in waiting:
                waiting[item.key].append(item)
                continue
            waiting[item.key] = []
            unique.append(item)

        # Phase 2: fan the unique survivors out to the pool.
        if unique:
            self._dispatch(unique, waiting, finish, label)

        wall = time.perf_counter() - t0
        self._record(
            "serve_batch_done",
            batch=batch_id,
            items=len(requests),
            done=done_count,
            errors=sum(
                1
                for r in results
                if r is not None and not r.verdict.get("ok")
            ),
            seconds=round(wall, 6),
        )
        if obs.enabled():
            obs.observe("serve.batch_seconds", wall)
            obs.set_gauge("serve.inflight", 0)
            obs.set_gauge("serve.cache.entries", len(self.cache))
            from repro.runtime.parallel import publish_cache_gauges

            publish_cache_gauges()
        if (
            self.clear_caches_every
            and self.batches % self.clear_caches_every == 0
        ):
            from repro.runtime.parallel import clear_sweep_caches

            clear_sweep_caches()
        journal = self._journal()
        if journal is not None and not journal.closed:
            journal.sync()
        return [r for r in results if r is not None]

    def _serve_hit(
        self,
        entry: tuple[dict, tuple[int, ...]],
        item: _PendingItem,
        finish: Callable[[ItemResult], None],
    ) -> bool:
        """Serve a cache hit if the entry is usable for this item."""
        verdict, cached_perm = entry
        remap = _compose_remap(cached_perm, item.perm)
        if remap is None:
            finish(ItemResult(item.index, dict(verdict), cached=True))
            return True
        if not item.translatable:
            # Relabelled twin with non-translatable payload: recheck.
            self.cache.hits -= 1  # the lookup was not served
            self.cache.misses += 1
            return False
        finish(
            ItemResult(
                item.index, _remap_verdict(verdict, remap), cached=True
            )
        )
        return True

    def _dispatch(
        self,
        unique: list[_PendingItem],
        waiting: dict[tuple, list[_PendingItem]],
        finish: Callable[[ItemResult], None],
        label: str,
    ) -> None:
        from repro.runtime.parallel import (
            _drain_heartbeats,
            get_sweep_monitor,
        )

        monitor = get_sweep_monitor()
        if monitor is not None:
            monitor.on_sweep_start(
                f"serve:{label}", len(unique), self.jobs
            )
        t0 = time.perf_counter()

        def graft_worker_span(verdict: dict) -> None:
            """Pop the transient ``_worker_span`` payload and graft it
            into the live trace.  Must run before the verdict is cached
            or streamed — the payload names one process's execution of
            one request and must never leak into NDJSON or the cache."""
            ws = verdict.pop("_worker_span", None)
            if ws is None or not obs.enabled():
                return
            obs.attach(
                obs.Span(
                    name="serve.check",
                    attrs={
                        "trace_id": str(ws.get("trace_id", "")),
                        "span_id": str(ws.get("span_id", "")),
                        "parent_span_id": str(
                            ws.get("parent_span_id", "")
                        ),
                        "pid": int(ws.get("pid", 0)),
                    },
                    start=0.0,
                    duration=float(ws.get("seconds", 0.0)),
                )
            )

        def recheck_inline(pending: _PendingItem) -> dict:
            """Run an item in this process, trace context included."""
            ctx = pending.ctx
            trace = (
                ctx.as_tuple() if ctx is not None and ctx.sampled else None
            )
            verdict = check_document(pending.doc, pending.options, trace)
            graft_worker_span(verdict)
            return verdict

        def settle(item: _PendingItem, verdict: dict) -> None:
            """Store, answer the item, and fan out to its twins."""
            graft_worker_span(verdict)
            self.cache.put(item.key, verdict, item.perm)  # type: ignore[arg-type]
            finish(ItemResult(item.index, dict(verdict), cached=False))
            # Consume the twin list: a later broken-pool retry must not
            # re-settle an already-answered fingerprint.
            for twin in waiting.pop(item.key, ()):  # type: ignore[arg-type]
                remap = _compose_remap(item.perm, twin.perm)
                if remap is None:
                    finish(
                        ItemResult(twin.index, dict(verdict), cached=True)
                    )
                elif twin.translatable:
                    finish(
                        ItemResult(
                            twin.index,
                            _remap_verdict(verdict, remap),
                            cached=True,
                        )
                    )
                else:
                    # Same fingerprint but ids differ and the payload
                    # cannot be translated: check it directly.
                    finish(
                        ItemResult(
                            twin.index,
                            recheck_inline(twin),
                            cached=False,
                        )
                    )

        failed: list[_PendingItem] = []
        try:
            pool = self._ensure_pool()
            futures = {
                pool.submit(
                    check_document,
                    it.doc,
                    it.options,
                    it.ctx.as_tuple()
                    if it.ctx is not None and it.ctx.sampled
                    else None,
                ): it
                for it in unique
            }
            pending = set(futures)
            interval = (
                monitor.interval if monitor is not None else 1.0
            )
            while pending:
                done, pending = wait(
                    pending,
                    timeout=interval / 2,
                    return_when=FIRST_COMPLETED,
                )
                if self._hb_queue is not None:
                    if monitor is not None:
                        _drain_heartbeats(self._hb_queue, monitor)
                        monitor.check_stalls()
                    else:
                        _discard_heartbeats(self._hb_queue)
                if obs.enabled():
                    obs.set_gauge("serve.inflight", len(pending))
                for future in done:
                    item = futures[future]
                    try:
                        settle(item, future.result())
                    except BrokenProcessPool:
                        failed.append(item)
        except BrokenProcessPool:
            failed = [it for it in unique if it.key in waiting]
        if failed:
            # A dead worker broke the pool: rebuild it and finish the
            # stragglers in-process, mirroring the sweep engine's
            # serial-retry policy (never lose accepted work).
            self._teardown_pool()
            obs.warning(
                "serve pool broke mid-batch; retrying items in-process",
                items=len(failed),
            )
            for item in failed:
                ctx = item.ctx
                trace = (
                    ctx.as_tuple()
                    if ctx is not None and ctx.sampled
                    else None
                )
                settle(
                    item, check_document(item.doc, item.options, trace)
                )
        if monitor is not None:
            monitor.on_sweep_done(
                f"serve:{label}", time.perf_counter() - t0
            )


# ----------------------------------------------------------------------
# Crash replay
# ----------------------------------------------------------------------


def replay_serve_ledger(path: str) -> dict:
    """Fold a (possibly torn) journal into a ledger of completed work.

    ``serve_batch`` / ``serve_item`` / ``serve_batch_done`` records
    survive :func:`repro.obs.journal.replay_journal` verbatim (unknown
    kinds are preserved into the collector's event list), so a server
    SIGKILLed mid-batch replays to exactly the items that finished:
    ``pending`` is the accepted-but-unanswered remainder to resubmit.

    Records that carry a ``trace_id`` (every one written since the
    service started propagating contexts) are additionally folded into
    a per-trace ``"traces"`` map, so a caller who stamped its requests
    with a ``traceparent`` can reconcile *its own* work against a torn
    journal without untangling interleaved batches.
    """
    from repro.obs.journal import replay_journal

    replay = replay_journal(path)
    ledger: dict[str, Any] = {
        "clean": replay.clean,
        "batches_accepted": 0,
        "batches_done": 0,
        "items_accepted": 0,
        "items_done": 0,
        "admitted": 0,
        "rejected": 0,
        "errors": 0,
        "cached": 0,
    }
    traces: dict[str, dict[str, int]] = {}

    def trace_bucket(ev: dict) -> dict[str, int] | None:
        tid = ev.get("trace_id")
        if not isinstance(tid, str) or not tid:
            return None
        return traces.setdefault(
            tid,
            {
                "items_accepted": 0,
                "items_done": 0,
                "admitted": 0,
                "rejected": 0,
                "errors": 0,
                "cached": 0,
            },
        )

    for ev in replay.obs.events:
        kind = ev.get("kind")
        if kind == "serve_batch":
            ledger["batches_accepted"] += 1
            ledger["items_accepted"] += int(ev.get("items", 0))
            bucket = trace_bucket(ev)
            if bucket is not None:
                bucket["items_accepted"] += int(ev.get("items", 0))
        elif kind == "serve_item":
            ledger["items_done"] += 1
            if not ev.get("ok"):
                ledger["errors"] += 1
            elif ev.get("admitted") is True:
                ledger["admitted"] += 1
            elif ev.get("admitted") is False:
                ledger["rejected"] += 1
            if ev.get("cached"):
                ledger["cached"] += 1
            bucket = trace_bucket(ev)
            if bucket is not None:
                bucket["items_done"] += 1
                if not ev.get("ok"):
                    bucket["errors"] += 1
                elif ev.get("admitted") is True:
                    bucket["admitted"] += 1
                elif ev.get("admitted") is False:
                    bucket["rejected"] += 1
                if ev.get("cached"):
                    bucket["cached"] += 1
        elif kind == "serve_batch_done":
            ledger["batches_done"] += 1
    ledger["pending"] = max(
        0, ledger["items_accepted"] - ledger["items_done"]
    )
    for bucket in traces.values():
        bucket["pending"] = max(
            0, bucket["items_accepted"] - bucket["items_done"]
        )
    ledger["traces"] = traces
    return ledger
