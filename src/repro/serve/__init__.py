"""``repro serve`` — the batch trace-checking service.

The paper's computation-centric framing makes trace checking
embarrassingly batchable: every request is a self-contained
``(computation, observer constraints)`` pair, so a long-running service
can fan thousands of machine-generated litmus traces out to a process
pool and answer each independently (SNIPPETS.md's axe workload — "check
millions of generated traces against the model" — is the shape this
package serves).

Layering:

* :mod:`repro.serve.service` — the engine: request parsing and
  canonical fingerprinting, the bounded LRU verdict cache, the
  process-pool dispatch loop (heartbeats + stall watchdog reused from
  :mod:`repro.runtime.parallel`), journal records, and the
  SIGKILL-replay ledger.
* :mod:`repro.serve.http` — the asyncio front-end: JSONL over HTTP
  with streamed verdicts, graceful SIGTERM/SIGINT drain, and the
  offline ``--input FILE`` batch mode.

The CLI entry point is ``repro serve`` (see ``repro serve --help``).
"""

from repro.serve.service import (
    CheckOptions,
    ItemResult,
    TraceCheckService,
    VerdictCache,
    check_document,
    parse_request,
    replay_serve_ledger,
    request_fingerprint,
)
from repro.serve.http import run_batch_file, serve_http

__all__ = [
    "CheckOptions",
    "ItemResult",
    "TraceCheckService",
    "VerdictCache",
    "check_document",
    "parse_request",
    "replay_serve_ledger",
    "request_fingerprint",
    "run_batch_file",
    "serve_http",
]
