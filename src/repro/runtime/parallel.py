"""Process-pool sweep engine for universe-scale model checking.

Every "evaluation" artifact of this repository — the Figure 1 lattice,
the Figures 2–4 witness searches, the Theorem 19/23 sweeps — exhaustively
enumerates ordered dags: ``2^(n choose 2)`` edge masks crossed with op
labellings and observer functions.  The instances are independent, so the
sweeps are embarrassingly parallel (cf. Naylor & Moore's *axe* checker
and Chini & Saivasan's consistency-algorithm framework).  This module is
the shared substrate:

* :class:`ShardSpec` — a picklable description of one slice of the
  enumeration space (a contiguous edge-mask range at one size), which any
  worker process can regenerate independently;
* :func:`make_shards` / :func:`run_shards` — chunked dispatch over a
  ``ProcessPoolExecutor`` with a serial fallback (``jobs=1``, the
  ``REPRO_JOBS`` environment variable, or universes too small to amortize
  pool startup);
* fused sweep kernels — one enumeration pass evaluates *all* requested
  models/edges instead of re-enumerating per question, which is where the
  bulk of the single-core win comes from (membership verdicts and
  augmentation extensions are shared across questions via the caches in
  :mod:`repro.dag.enumerate`, :mod:`repro.core.computation` and
  :mod:`repro.models.constructibility`);
* :class:`SweepStats` — per-shard timings and cache hit rates, surfaced
  by ``repro lattice --stats`` and the ``BENCH_parallel_sweep.json``
  benchmark, so speedups are measured rather than asserted.  Stats are a
  *view* over the :mod:`repro.obs` span substrate: every sweep builds a
  ``sweep:<label>`` span with one ``shard`` child per shard (worker
  timings, per-worker cache hit/miss deltas, the worker's cache-enabled
  flag), and when the global tracer is enabled the same span object is
  grafted into the live trace and the sweep counters are accumulated.

Correctness of the *measurements*: :class:`ShardSpec` carries the
parent's :mod:`repro._caching` flag into the worker (fresh interpreters
would otherwise re-import ``repro._caching`` with ``ENABLED=True`` and
silently run an "uncached baseline" cached), and the per-shard cache
telemetry proves it — an uncached sweep must report zero cache
consultations in every worker.

Robustness: a crashed worker (``BrokenProcessPool``) no longer kills the
sweep; the affected shards are logged as a structured
:func:`repro.obs.warning` and retried once serially through the *same*
kernel path, so results stay canonical-order identical.

Deterministic merging: shards partition the canonical enumeration order
(size ascending, then edge mask ascending), workers return per-shard
results, and merges fold them in shard order — so counts, inclusion
matrices and *first-witness* searches are bit-identical to the serial
sweep regardless of worker scheduling.

Set ``REPRO_JOBS`` (or pass ``--jobs`` on the CLI) to choose the worker
count; ``0`` means one worker per CPU, ``1`` forces the serial path.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from functools import partial
from typing import Any, Callable, Sequence

from repro import kernels, obs
from repro._caching import caches_enabled, sweep_caching
from repro.errors import ConfigError
from repro.models.universe import Universe
from repro.obs import Span
from repro.obs import context as trace_context
from repro.obs import profile as obs_profile
from repro.obs.context import TraceContext
from repro.runtime.shm import ShmSlice, share_universe, shm_mode

__all__ = [
    "ShardSpec",
    "ShardMeta",
    "ShardOutcome",
    "SweepStats",
    "SweepMonitor",
    "set_sweep_monitor",
    "get_sweep_monitor",
    "heartbeat_interval",
    "effective_jobs",
    "make_shards",
    "run_shards",
    "clear_sweep_caches",
    "publish_cache_gauges",
    "sweep_cache_info",
    "parallel_inclusion_matrix",
    "parallel_separation_witnesses",
    "parallel_nonconstructibility_witnesses",
    "parallel_thm23_counts",
    "parallel_lattice_battery",
    "LatticeBatteryResult",
]

PARALLEL_THRESHOLD = 512
"""Universes with fewer computations than this run serially: forking a
pool costs more than the sweep itself."""

MODEL_NAMES = ("SC", "LC", "CC", "NN", "NW", "WN", "WW")
"""Names resolvable by the sweep kernels (the shipped model zoo)."""


# ----------------------------------------------------------------------
# Worker heartbeat channel
# ----------------------------------------------------------------------

HEARTBEAT_PAIRS = 32
"""Pairs between clock checks inside the enumeration loop.  The check
itself is one modulo + comparison; the actual heartbeat (a cache-info
scan and a queue put) only fires when the interval has elapsed."""

_HB: dict[str, Any] | None = None
"""This process's heartbeat channel, or ``None`` (the default: no
monitoring, zero overhead — :meth:`ShardSpec.iter_pairs` returns the raw
iterator untouched).  In a pool worker :func:`_init_pool_worker` points
it at the parent's queue; in the parent, :func:`run_shards` points it at
the active monitor so the serial path and crash retries heartbeat too."""


def heartbeat_interval(default: float = 1.0) -> float:
    """Seconds between worker heartbeats (``REPRO_HEARTBEAT_SECS``)."""
    env = os.environ.get("REPRO_HEARTBEAT_SECS")
    if env:
        try:
            value = float(env)
            if value > 0:
                return value
        except ValueError:
            pass
    return default


def _init_pool_worker(
    hb_queue: Any, interval: float, profile_spec: dict | None = None
) -> None:
    """Pool-worker initializer: route this worker's heartbeats to the
    parent's queue and, when the parent is profiling, arm this worker's
    own SIGPROF sampler.  Passed via ``ProcessPoolExecutor(
    initializer=...)`` so it works under both fork and spawn start
    methods — the one channel that reaches a worker before any task."""
    global _HB
    if hb_queue is not None:
        _HB = {"queue": hb_queue, "monitor": None, "interval": interval}
    if profile_spec is not None:
        try:
            obs_profile.start_worker_profiler(profile_spec)
        except Exception:
            # A worker that cannot profile must still check shards.
            pass


def _cache_totals_now() -> tuple[int, int]:
    info = sweep_cache_info()
    return (
        sum(c["hits"] for c in info.values()),
        sum(c["misses"] for c in info.values()),
    )


def _send_heartbeat(
    shard: "ShardSpec",
    pairs_done: int,
    elapsed: float,
    cache_base: tuple[int, int],
) -> None:
    """Emit one heartbeat over whichever channel this process has."""
    hb_state = _HB
    if hb_state is None:
        return
    hits, misses = _cache_totals_now()
    hb = {
        "pid": os.getpid(),
        "n": shard.n,
        "mask_lo": shard.mask_lo,
        "mask_hi": shard.mask_hi,
        "pairs_done": pairs_done,
        "elapsed": round(elapsed, 6),
        "cache_hits": max(0, hits - cache_base[0]),
        "cache_misses": max(0, misses - cache_base[1]),
    }
    ctx = trace_context.current()
    if ctx is not None and ctx.sampled:
        hb["trace_id"] = ctx.trace_id
        if ctx.span_id:
            hb["span_id"] = ctx.span_id
    hb_queue = hb_state.get("queue")
    if hb_queue is not None:
        try:
            hb_queue.put_nowait(hb)
        except Exception:
            # A full or torn-down queue must never fail the kernel; the
            # watchdog treats the missing beat as a (recoverable) stall.
            pass
    else:
        monitor = hb_state.get("monitor")
        if monitor is not None:
            monitor.on_worker_heartbeat(hb)


def _heartbeat_iter(shard: "ShardSpec", inner: Any) -> Any:
    """Wrap a shard's pair iterator with interval-limited heartbeats.

    A beat is sent at pair 0 (so even sub-interval shards announce
    themselves deterministically) and then at most once per heartbeat
    interval, checked every :data:`HEARTBEAT_PAIRS` pairs."""
    interval = _HB["interval"] if _HB else 1.0
    t0 = time.perf_counter()
    cache_base = _cache_totals_now()
    _send_heartbeat(shard, 0, 0.0, cache_base)
    next_beat = t0 + interval
    pairs = 0
    for item in inner:
        yield item
        pairs += 1
        if pairs % HEARTBEAT_PAIRS == 0:
            now = time.perf_counter()
            if now >= next_beat:
                _send_heartbeat(shard, pairs, now - t0, cache_base)
                next_beat = now + interval


# ----------------------------------------------------------------------
# Work description
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardSpec:
    """One independently-enumerable slice of a universe.

    The tuple of universe parameters plus ``(n, mask_lo, mask_hi)`` fully
    determines the slice, so the spec pickles in a few bytes and each
    worker regenerates its computations locally instead of receiving them
    over a pipe.

    ``cache_enabled`` carries the parent process's
    :func:`repro._caching.caches_enabled` state into the worker: pool
    workers may be fresh interpreters whose ``repro._caching`` module
    re-imports with ``ENABLED=True``, so without this field an
    "uncached" sweep (``sweep_caching(False)``) would silently run
    cached inside every worker.  :func:`_instrumented` applies the flag
    around the kernel body and reports the worker's view back in
    :class:`ShardMeta`.

    ``obs_enabled`` does the same for the tracer: a worker's
    :mod:`repro.obs` collector re-imports disabled, so counters emitted
    inside the kernel (``sweep.kernel.*``, or ``backer.*`` from any
    nested execution) would land in the worker's dead singleton and
    vanish.  When the flag is set, :func:`_instrumented` collects the
    worker's counter *deltas* across the kernel body into
    :attr:`ShardMeta.counters` and :func:`run_shards` merges them into
    the parent trace.

    ``shm`` (set by :func:`run_shards` when the dispatcher shared the
    universe) points the worker at its row range of the packed
    enumeration in a :mod:`multiprocessing.shared_memory` block —
    :meth:`iter_pairs` then *decodes* pairs from the read-only mapping
    instead of regenerating them, falling back to regeneration (with a
    structured warning and an ``shm.fallback`` counter) if the block
    cannot be attached.

    ``trace`` (also stamped by :func:`run_shards`) is the sweep's
    propagated trace context as a :meth:`TraceContext.as_tuple` tuple.
    Like the caching and obs flags it exists because a pool worker is a
    separate interpreter: the ambient :mod:`repro.obs.context` does not
    cross ``fork``/``spawn``, so the spec itself carries the ids.
    :func:`_instrumented` re-activates the context in the worker, which
    is how shard spans, heartbeats and kernel warnings all end up
    tagged with the originating request's ``trace_id``.
    """

    max_nodes: int
    locations: tuple
    include_nop: bool
    n: int
    mask_lo: int
    mask_hi: int
    cache_enabled: bool = True
    obs_enabled: bool = False
    shm: ShmSlice | None = None
    trace: tuple | None = None

    def universe(self) -> Universe:
        """Rebuild the owning universe (cheap; workers call this once)."""
        return Universe(
            max_nodes=self.max_nodes,
            locations=self.locations,
            include_nop=self.include_nop,
        )

    def iter_pairs(self):
        """The (computation, observer) pairs of this shard, in canonical
        order (edge mask ascending, then labelling, then observer).

        With an :attr:`shm` slice attached, pairs are decoded from the
        dispatcher's shared-memory block (one read-only mapping per
        process) rather than regenerated; any attach failure degrades
        to regeneration so a vanished segment can slow a sweep but
        never break it.

        When this process has a heartbeat channel (a monitored sweep —
        pool worker or parent-serial), the iterator is wrapped to emit
        interval-limited progress heartbeats; otherwise it is returned
        untouched, so unmonitored sweeps pay nothing."""
        inner = None
        if self.shm is not None:
            from repro.runtime import shm as _shm

            try:
                inner = _shm.shard_pairs(self)
            except Exception as exc:
                obs.warning(
                    "shared universe unavailable; regenerating shard",
                    shm=self.shm.name,
                    n=self.n,
                    mask_lo=self.mask_lo,
                    mask_hi=self.mask_hi,
                    error=repr(exc),
                )
                obs.add("shm.fallback")
        if inner is None:
            inner = self.universe().pairs(self.n, (self.mask_lo, self.mask_hi))
        if _HB is None:
            return inner
        return _heartbeat_iter(self, inner)

    @property
    def num_masks(self) -> int:
        """Number of dag shapes in this shard."""
        return self.mask_hi - self.mask_lo


@dataclass
class ShardMeta:
    """Instrumentation for one shard's execution (in its worker process).

    ``caches`` holds the worker-local hits/misses *deltas* of every
    tracked sweep cache across the kernel body; ``cache_enabled`` is the
    caching flag the worker actually ran under (propagated from the
    parent via :attr:`ShardSpec.cache_enabled`); ``pid`` identifies the
    worker process, enabling per-worker telemetry aggregation.

    ``counters`` holds the deltas of every :mod:`repro.obs` counter the
    kernel body incremented, and ``counters_local`` records whether the
    executing process's collector was already live when the shard ran.
    That alone does not prove the increments reached the parent —
    forked pool workers inherit a live collector but increment a doomed
    copy — so :func:`_record_sweep` merges a shard's deltas whenever it
    ran in another process (``pid`` mismatch) *or* its collector was
    only enabled for the shard's duration.  ``mem_peak_bytes`` /
    ``mem_net_bytes`` are the kernel body's tracemalloc high-water mark
    and net allocation when ``REPRO_MEM=1`` (inherited by workers
    through the environment), else 0.
    """

    n: int
    mask_lo: int
    mask_hi: int
    seconds: float
    pairs: int
    caches: dict[str, dict[str, int]] = field(default_factory=dict)
    cache_enabled: bool = True
    pid: int = 0
    counters: dict[str, int] = field(default_factory=dict)
    counters_local: bool = True
    mem_peak_bytes: int = 0
    mem_net_bytes: int = 0
    #: Propagated request ids (empty when the sweep was untraced):
    #: ``span_id`` is this shard's own span, ``parent_span_id`` the
    #: sweep span it hangs under — the links the Chrome exporter uses
    #: to stitch worker-pid spans back into the request tree.
    trace_id: str = ""
    span_id: str = ""
    parent_span_id: str = ""

    @property
    def consultations(self) -> int:
        """Total cache consultations (hits + misses) in this shard.

        Zero iff the worker never touched the memoization layer — the
        telemetry signal that proves an "uncached baseline" really ran
        uncached inside the worker.
        """
        return sum(c["hits"] + c["misses"] for c in self.caches.values())

    def as_event(self) -> dict:
        """A compact JSON-safe summary for monitor listeners (the journal's
        ``shard_done`` record, the live board's completion feed)."""
        event = {
            "n": self.n,
            "mask_lo": self.mask_lo,
            "mask_hi": self.mask_hi,
            "seconds": round(self.seconds, 6),
            "pairs": self.pairs,
            "pid": self.pid,
        }
        if self.trace_id:
            event["trace_id"] = self.trace_id
            event["span_id"] = self.span_id
        return event

    def to_span(self) -> Span:
        """This shard's telemetry as an :mod:`repro.obs` span.

        ``start`` is 0.0: worker clocks are not comparable with the
        parent's epoch, only durations travel.
        """
        attrs = {
            "n": self.n,
            "mask_lo": self.mask_lo,
            "mask_hi": self.mask_hi,
            "pairs": self.pairs,
            "cache_enabled": self.cache_enabled,
            "pid": self.pid,
            "caches": self.caches,
            "counters": self.counters,
            "counters_local": self.counters_local,
        }
        if self.mem_peak_bytes or self.mem_net_bytes:
            attrs["mem_peak_bytes"] = self.mem_peak_bytes
            attrs["mem_net_bytes"] = self.mem_net_bytes
        if self.trace_id:
            attrs["trace_id"] = self.trace_id
            attrs["span_id"] = self.span_id
            if self.parent_span_id:
                attrs["parent_span_id"] = self.parent_span_id
        return Span(
            name="shard",
            attrs=attrs,
            start=0.0,
            duration=self.seconds,
        )

    @classmethod
    def from_span(cls, sp: Span) -> "ShardMeta":
        """Inverse of :meth:`to_span`."""
        a = sp.attrs
        return cls(
            n=a["n"],
            mask_lo=a["mask_lo"],
            mask_hi=a["mask_hi"],
            seconds=sp.duration,
            pairs=a["pairs"],
            caches=a.get("caches", {}),
            cache_enabled=a.get("cache_enabled", True),
            pid=a.get("pid", 0),
            counters=a.get("counters", {}),
            counters_local=a.get("counters_local", True),
            mem_peak_bytes=a.get("mem_peak_bytes", 0),
            mem_net_bytes=a.get("mem_net_bytes", 0),
            trace_id=a.get("trace_id", ""),
            span_id=a.get("span_id", ""),
            parent_span_id=a.get("parent_span_id", ""),
        )


@dataclass
class ShardOutcome:
    """A kernel's return value: the payload plus its instrumentation."""

    payload: Any
    meta: ShardMeta


@dataclass
class SweepStats:
    """Aggregated instrumentation for one sweep — a view over a span.

    The single field is a ``sweep:<label>`` :class:`repro.obs.Span`
    whose children are the per-shard telemetry spans; every property
    below derives from it.  :func:`run_shards` grafts the *same* span
    object into the live trace when the global tracer is enabled, so
    ``--trace`` output and ``--stats`` tables can never disagree.
    """

    span: Span

    @classmethod
    def build(
        cls,
        label: str,
        jobs: int,
        mode: str,
        wall_seconds: float,
        metas: Sequence[ShardMeta],
        retried_shards: int = 0,
        backend: str = "python",
        shm_used: bool = False,
    ) -> "SweepStats":
        """Assemble the stats span from worker-returned shard telemetry."""
        root = Span(
            name=f"sweep:{label}",
            attrs={
                "label": label,
                "jobs": jobs,
                "mode": mode,
                "retried_shards": retried_shards,
                "backend": backend,
                "shm": shm_used,
            },
            start=max(0.0, obs.now() - wall_seconds) if obs.enabled() else 0.0,
            duration=wall_seconds,
            children=[m.to_span() for m in metas],
        )
        return cls(span=root)

    @property
    def label(self) -> str:
        return self.span.attrs["label"]

    @property
    def jobs(self) -> int:
        return self.span.attrs["jobs"]

    @property
    def mode(self) -> str:
        return self.span.attrs["mode"]

    @property
    def wall_seconds(self) -> float:
        return self.span.duration

    @property
    def retried_shards(self) -> int:
        """Shards re-run serially after a worker crash (normally 0)."""
        return self.span.attrs.get("retried_shards", 0)

    @property
    def backend(self) -> str:
        """The kernel backend the sweep resolved to (``REPRO_KERNEL``)."""
        return self.span.attrs.get("backend", "python")

    @property
    def shm_used(self) -> bool:
        """Whether workers decoded pairs from a shared-memory universe."""
        return self.span.attrs.get("shm", False)

    @property
    def shards(self) -> list[ShardMeta]:
        """Per-shard telemetry, reconstructed from the span substrate."""
        return [
            ShardMeta.from_span(c)
            for c in self.span.children
            if c.name == "shard"
        ]

    @property
    def pairs(self) -> int:
        """Total pairs visited across shards (early exits visit fewer)."""
        return sum(m.pairs for m in self.shards)

    def cache_totals(self) -> dict[str, dict[str, int]]:
        """Per-cache hits/misses summed over shards."""
        totals: dict[str, dict[str, int]] = {}
        for meta in self.shards:
            for name, counts in meta.caches.items():
                agg = totals.setdefault(name, {"hits": 0, "misses": 0})
                agg["hits"] += counts["hits"]
                agg["misses"] += counts["misses"]
        return totals

    def cache_consultations(self) -> int:
        """Total worker cache consultations (hits + misses) in the sweep."""
        return sum(m.consultations for m in self.shards)

    def by_worker(self) -> dict[int, dict[str, int]]:
        """Per-worker-process cache deltas: pid → hits/misses/shards."""
        out: dict[int, dict[str, int]] = {}
        for meta in self.shards:
            agg = out.setdefault(
                meta.pid, {"hits": 0, "misses": 0, "shards": 0}
            )
            for counts in meta.caches.values():
                agg["hits"] += counts["hits"]
                agg["misses"] += counts["misses"]
            agg["shards"] += 1
        return out

    def to_dict(self) -> dict:
        """JSON-serializable form (used by the benchmark artifacts)."""
        return {
            "label": self.label,
            "jobs": self.jobs,
            "mode": self.mode,
            "backend": self.backend,
            "shm": self.shm_used,
            "wall_seconds": self.wall_seconds,
            "pairs": self.pairs,
            "retried_shards": self.retried_shards,
            "cache_consultations": self.cache_consultations(),
            "shards": [
                {
                    "n": m.n,
                    "mask_lo": m.mask_lo,
                    "mask_hi": m.mask_hi,
                    "seconds": m.seconds,
                    "pairs": m.pairs,
                    "pid": m.pid,
                    "cache_enabled": m.cache_enabled,
                }
                for m in self.shards
            ],
            "caches": self.cache_totals(),
        }

    def render(self) -> str:
        """Human-readable table for ``--stats``."""
        lines = [
            f"sweep {self.label!r}: {self.mode}, jobs={self.jobs}, "
            f"kernel={self.backend}, shm={'on' if self.shm_used else 'off'}, "
            f"{self.pairs} pairs in {self.wall_seconds:.3f}s"
        ]
        if self.retried_shards:
            lines.append(
                f"  {self.retried_shards} shard(s) retried serially after "
                "a worker crash"
            )
        for m in self.shards:
            lines.append(
                f"  shard n={m.n} masks[{m.mask_lo}:{m.mask_hi}) "
                f"{m.pairs:>6} pairs  {m.seconds:.3f}s"
            )
        for name, c in sorted(self.cache_totals().items()):
            total = c["hits"] + c["misses"]
            rate = (100.0 * c["hits"] / total) if total else 0.0
            lines.append(
                f"  cache {name}: {rate:.0f}% hit ({c['hits']}/{total})"
            )
        workers = self.by_worker()
        if len(workers) > 1:
            for pid in sorted(workers):
                w = workers[pid]
                lines.append(
                    f"  worker pid={pid}: {w['shards']} shards, "
                    f"{w['hits']} hits / {w['hits'] + w['misses']} lookups"
                )
        if not any(m.cache_enabled for m in self.shards) and self.shards:
            lines.append(
                f"  caches disabled in workers "
                f"({self.cache_consultations()} consultations)"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Cache instrumentation
# ----------------------------------------------------------------------


def _tracked_caches() -> dict[str, Any]:
    from repro.core.computation import _augmented
    from repro.core.last_writer import _last_writer_row_cached
    from repro.core.ops import _merged_locations_cached
    from repro.dag.enumerate import _canonical_form_cached
    from repro.dag.toposort import _cached_topological_sorts
    from repro.models.base import _membership
    from repro.models.constructibility import _extension_pairs
    from repro.models.location_consistency import _lc_row_set
    from repro.models.sequential import _sc_row_sets
    from repro.verify.races import _find_races_cached

    # Every ``lru_cache`` memoization in the library must appear here:
    # this registry is what ``clear_sweep_caches`` (the long-running
    # server's between-batches hook) and the cache-size gauges see, so
    # an untracked cache is an unbounded-in-practice leak across a
    # server's lifetime even when its entry *count* is capped (keys
    # pin whole computations).  ``find_races`` and ``merged_locations``
    # were exactly that until the serve work audited them in.
    return {
        "augment": _augmented,
        "canonical_form": _canonical_form_cached,
        "extension_pairs": _extension_pairs,
        "find_races": _find_races_cached,
        "last_writer_row": _last_writer_row_cached,
        "lc_row_set": _lc_row_set,
        "membership": _membership,
        "merged_locations": _merged_locations_cached,
        "sc_row_sets": _sc_row_sets,
        "topological_sorts": _cached_topological_sorts,
    }


def sweep_cache_info() -> dict[str, dict[str, int]]:
    """Current hits/misses/size of every memoized sweep hot path."""
    out: dict[str, dict[str, int]] = {}
    for name, fn in _tracked_caches().items():
        info = fn.cache_info()
        out[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "currsize": info.currsize,
        }
    return out


def clear_sweep_caches() -> None:
    """Reset every memoized sweep hot path.

    Benchmark baselines use this to measure cold; the trace-checking
    service (:mod:`repro.serve`) calls it between batches so a
    long-running process cannot accumulate pinned computations across
    its lifetime — the one-shot CLI never lived long enough to care.
    """
    for fn in _tracked_caches().values():
        fn.cache_clear()


def publish_cache_gauges() -> None:
    """Export every tracked cache's entry count as an obs gauge.

    One ``cache.<name>.entries`` gauge per memoized helper plus a
    ``cache.entries`` total — the telemetry a long-running server (and
    its Prometheus scrapers) watches to see the memoization layer's
    footprint instead of discovering it from RSS.  No-op while the
    collector is disabled.
    """
    if not obs.enabled():
        return
    total = 0
    for name, info in sweep_cache_info().items():
        obs.set_gauge(f"cache.{name}.entries", info["currsize"])
        total += info["currsize"]
    obs.set_gauge("cache.entries", total)


# ----------------------------------------------------------------------
# Sweep monitoring (heartbeat drain + stall watchdog)
# ----------------------------------------------------------------------


class SweepMonitor:
    """Parent-side consumer of the worker heartbeat stream.

    Install one with :func:`set_sweep_monitor` (the CLI does this for
    ``--journal`` / ``--live``) and every subsequent :func:`run_shards`
    call drains worker heartbeats into the monitor's *listeners* — any
    objects quacking some subset of ``on_sweep_start(label, shards,
    jobs)`` / ``on_heartbeat(hb)`` / ``on_shard_done(meta)`` /
    ``on_sweep_done(label, wall_seconds)`` (the :class:`repro.obs.Journal`
    and :class:`repro.obs.LiveBoard` both do).  A listener exception is
    swallowed: a broken status board must never fail a sweep.

    The monitor doubles as the **stall watchdog**: a worker that has
    heartbeat at least once and then misses ``stall_intervals``
    consecutive intervals triggers a structured :func:`repro.obs.warning`
    (once per stall — a worker that resumes and stalls again re-warns)
    and the optional ``on_stall(pid, last_hb)`` hook, the attachment
    point for shard re-dispatch policies.  ``clock`` is injectable so
    tests drive the watchdog deterministically.
    """

    def __init__(
        self,
        listeners: Sequence[Any] = (),
        stall_intervals: int = 5,
        interval: float | None = None,
        on_stall: Callable[[int, dict], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.listeners = list(listeners)
        self.interval = heartbeat_interval() if interval is None else interval
        self.stall_intervals = stall_intervals
        self.on_stall = on_stall
        self._clock = clock
        self.heartbeats = 0
        self.stall_warnings = 0
        self._label = ""
        self._last_seen: dict[int, tuple[float, dict]] = {}
        self._stalled: set[int] = set()

    def _dispatch(self, method: str, *args: Any) -> None:
        for listener in self.listeners:
            fn = getattr(listener, method, None)
            if fn is None:
                continue
            try:
                fn(*args)
            except Exception:
                pass

    def on_sweep_start(self, label: str, shards: int, jobs: int) -> None:
        self._label = label
        self._last_seen = {}
        self._stalled = set()
        self._dispatch("on_sweep_start", label, shards, jobs)

    def on_worker_heartbeat(self, hb: dict) -> None:
        """One heartbeat arrived (from the queue drain, or directly from
        the in-process serial path)."""
        self.heartbeats += 1
        pid = hb.get("pid", 0)
        self._last_seen[pid] = (self._clock(), hb)
        self._stalled.discard(pid)
        self._dispatch("on_heartbeat", hb)

    def on_shard_done(self, meta: ShardMeta) -> None:
        self._last_seen.pop(meta.pid, None)
        self._stalled.discard(meta.pid)
        self._dispatch("on_shard_done", meta.as_event())

    def on_sweep_done(self, label: str, wall_seconds: float) -> None:
        self._last_seen = {}
        self._stalled = set()
        self._dispatch("on_sweep_done", label, wall_seconds)

    def check_stalls(self) -> list[int]:
        """Warn about workers silent for ``stall_intervals`` intervals.

        Returns the pids newly flagged this call.  Called periodically by
        the monitored dispatch loop; idempotent between state changes."""
        now = self._clock()
        cutoff = self.interval * self.stall_intervals
        flagged: list[int] = []
        for pid, (seen_at, hb) in self._last_seen.items():
            if pid in self._stalled or now - seen_at < cutoff:
                continue
            self._stalled.add(pid)
            self.stall_warnings += 1
            flagged.append(pid)
            obs.warning(
                "worker heartbeat stalled",
                sweep=self._label,
                pid=pid,
                n=hb.get("n"),
                mask_lo=hb.get("mask_lo"),
                mask_hi=hb.get("mask_hi"),
                pairs_done=hb.get("pairs_done"),
                silent_seconds=round(now - seen_at, 3),
                missed_intervals=self.stall_intervals,
            )
            if self.on_stall is not None:
                try:
                    self.on_stall(pid, hb)
                except Exception:
                    pass
        return flagged


_MONITOR: SweepMonitor | None = None


def set_sweep_monitor(monitor: SweepMonitor | None) -> None:
    """Install the process-wide sweep monitor (``None`` uninstalls).

    While installed, every :func:`run_shards` call streams heartbeats and
    shard completions through it; without one, sweeps run exactly as
    before (no queue, no wrapper, no overhead)."""
    global _MONITOR
    _MONITOR = monitor


def get_sweep_monitor() -> SweepMonitor | None:
    """The currently installed sweep monitor, if any."""
    return _MONITOR


# ----------------------------------------------------------------------
# Planning and dispatch
# ----------------------------------------------------------------------


def effective_jobs(jobs: int | None = None) -> int:
    """Resolve a worker count: explicit arg, else ``REPRO_JOBS``, else 1.

    ``0`` (from either source) means one worker per CPU.  The default is
    serial so that library callers and the test suite only fork worker
    pools on request.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env is None:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            # ConfigError is a ReproError *and* a ValueError, so both the
            # CLI's clean one-line-error-and-exit-2 path and library
            # callers catching ValueError handle it; ``from None`` keeps
            # the int() traceback out of user-facing errors.
            raise ConfigError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _total_computations(universe: Universe) -> int:
    return sum(
        universe.count_computations(n) for n in range(universe.max_nodes + 1)
    )


def make_shards(
    universe: Universe, jobs: int = 1, shards_per_job: int = 4
) -> list[ShardSpec]:
    """Partition a universe into shards, in canonical enumeration order.

    Every size gets at least one shard; the edge-mask ranges of the
    largest sizes are split so the total shard count approaches
    ``jobs * shards_per_job`` (over-decomposition smooths load imbalance
    between sparse and dense dag shapes).  The shards exactly partition
    the enumeration space: concatenated in order they reproduce the
    serial sweep.

    Every spec snapshots the current :func:`~repro._caching.caches_enabled`
    state so pool workers run under the parent's caching configuration,
    and the tracer's enabled flag so worker-side counters are collected
    (and merged back) exactly when the parent is tracing.
    """
    cache_enabled = caches_enabled()
    obs_enabled = obs.enabled()
    sizes = range(universe.max_nodes + 1)
    weights = {n: universe.count_computations(n) for n in sizes}
    total = sum(weights.values()) or 1
    target = max(1, jobs * shards_per_job)
    shards: list[ShardSpec] = []
    for n in sizes:
        masks = universe.num_edge_masks(n)
        want = max(1, round(target * weights[n] / total)) if jobs > 1 else 1
        k = min(masks, want)
        # Near-even contiguous split of [0, masks) into k ranges.
        base, extra = divmod(masks, k)
        lo = 0
        for i in range(k):
            hi = lo + base + (1 if i < extra else 0)
            shards.append(
                ShardSpec(
                    max_nodes=universe.max_nodes,
                    locations=tuple(universe.locations),
                    include_nop=universe.include_nop,
                    n=n,
                    mask_lo=lo,
                    mask_hi=hi,
                    cache_enabled=cache_enabled,
                    obs_enabled=obs_enabled,
                )
            )
            lo = hi
        assert lo == masks
    return shards


def run_shards(
    kernel: Callable[[ShardSpec], ShardOutcome],
    shards: Sequence[ShardSpec],
    jobs: int = 1,
    label: str = "sweep",
) -> tuple[list[Any], SweepStats]:
    """Run ``kernel`` over every shard and return payloads in shard order.

    ``jobs <= 1`` (or a single shard) runs in-process — the serial
    fallback — through the *same* kernel code path, which is what makes
    "parallel equals serial" trivially auditable.  Otherwise shards are
    submitted one at a time to a process pool so slow shards don't
    convoy behind fast ones.

    A worker crash (``BrokenProcessPool``) does not kill the sweep: the
    shards whose results were lost are logged as a structured
    :func:`repro.obs.warning` and retried once serially through the same
    kernel, so the merged results stay canonical-order identical to an
    undisturbed run.

    When a :class:`SweepMonitor` is installed (see
    :func:`set_sweep_monitor`), pool workers additionally stream
    heartbeats back over a queue and the dispatch loop drains them into
    the monitor between future completions; the serial path (and crash
    retries) heartbeat directly through the monitor.  With no monitor
    installed this function is byte-for-byte the old dispatch.

    For pool dispatch (``REPRO_SHM=auto``, the default, or always with
    ``REPRO_SHM=1``) the enumeration is packed **once** here into a
    shared-memory block that every worker maps read-only and decodes
    (:mod:`repro.runtime.shm`); the segment's lifetime is exactly this
    call — the ``finally`` below unlinks it on success, worker-crash
    retry, and ``KeyboardInterrupt`` alike.  Packing failures degrade
    to per-worker regeneration, never to a failed sweep.
    """
    monitor = _MONITOR
    t0 = time.perf_counter()
    retried: list[int] = []
    shards = list(shards)
    pool_dispatch = jobs > 1 and len(shards) > 1
    shm_wanted = shm_mode()
    shm_handle = None
    if shards and (shm_wanted == "1" or (shm_wanted == "auto" and pool_dispatch)):
        try:
            shm_handle, slices = share_universe(shards)
        except Exception as exc:
            obs.warning(
                "universe packing failed; workers will regenerate",
                sweep=label,
                error=repr(exc),
            )
            obs.add("shm.fallback")
        else:
            shards = [replace(s, shm=sl) for s, sl in zip(shards, slices)]
    # Trace propagation mirrors the shm stamping: when this sweep runs
    # under a sampled request context, mint one child span id for the
    # sweep and ship it to every shard so worker-side telemetry can
    # link back to it across the fork boundary.
    parent_ctx = trace_context.current()
    sweep_ctx: TraceContext | None = None
    if parent_ctx is not None and parent_ctx.sampled:
        sweep_ctx = parent_ctx.child()
        shards = [replace(s, trace=sweep_ctx.as_tuple()) for s in shards]
    if monitor is not None:
        monitor.on_sweep_start(label, len(shards), max(1, jobs))
        # Route this process's own kernel executions (serial fallback,
        # crash retries) straight into the monitor.
        global _HB
        hb_prev = _HB
        _HB = {
            "queue": None,
            "monitor": monitor,
            "interval": monitor.interval,
        }
    try:
        if not pool_dispatch:
            outcomes = []
            for s in shards:
                outcome = kernel(s)
                if monitor is not None:
                    monitor.on_shard_done(outcome.meta)
                outcomes.append(outcome)
            mode = "serial"
        else:
            workers = min(jobs, len(shards))
            if monitor is not None:
                outcomes, retried = _dispatch_pool_monitored(
                    kernel, shards, workers, label, monitor
                )
            else:
                outcomes, retried = _dispatch_pool(
                    kernel, shards, workers, label
                )
            mode = f"process-pool({workers})"
    finally:
        if monitor is not None:
            _HB = hb_prev
        # Guaranteed unlink: covers clean exit, kernel exceptions, the
        # crash-retry path (retries run inside the dispatch above), and
        # KeyboardInterrupt.  Workers that already mapped the block keep
        # their pages until they exit.
        if shm_handle is not None:
            shm_handle.close()
    wall = time.perf_counter() - t0
    if monitor is not None:
        monitor.on_sweep_done(label, wall)
    stats = SweepStats.build(
        label=label,
        jobs=jobs,
        mode=mode,
        wall_seconds=wall,
        metas=[o.meta for o in outcomes],
        retried_shards=len(retried),
        backend=kernels.backend_name(),
        shm_used=shm_handle is not None,
    )
    if sweep_ctx is not None:
        stats.span.attrs["trace_id"] = sweep_ctx.trace_id
        stats.span.attrs["span_id"] = sweep_ctx.span_id
        if sweep_ctx.parent_span_id:
            stats.span.attrs["parent_span_id"] = sweep_ctx.parent_span_id
    _record_sweep(stats)
    return [o.payload for o in outcomes], stats


def _dispatch_pool(
    kernel: Callable[[ShardSpec], ShardOutcome],
    shards: Sequence[ShardSpec],
    workers: int,
    label: str,
) -> tuple[list[ShardOutcome], list[int]]:
    """Pool dispatch with crash recovery; returns (outcomes, retried idx).

    Futures are collected in submission order, so ``outcomes`` preserves
    the canonical shard order.  Kernel *exceptions* propagate (they would
    fail serially too); only abrupt worker death — which poisons the
    whole pool and surfaces as ``BrokenProcessPool`` on every unfinished
    future — is converted into a serial retry of the affected shards.
    """
    outcomes: list[ShardOutcome | None] = [None] * len(shards)
    failed: list[int] = []
    pool_kwargs: dict[str, Any] = {}
    profile_spec = obs_profile.worker_spec()
    if profile_spec is not None:
        # Unmonitored pools normally need no initializer at all; only a
        # profiling run pays for one (to arm each worker's sampler).
        pool_kwargs = {
            "initializer": _init_pool_worker,
            "initargs": (None, heartbeat_interval(), profile_spec),
        }
    with ProcessPoolExecutor(max_workers=workers, **pool_kwargs) as pool:
        futures = [pool.submit(kernel, shard) for shard in shards]
        for i, future in enumerate(futures):
            try:
                outcomes[i] = future.result()
            except BrokenProcessPool:
                failed.append(i)
    if failed:
        obs.warning(
            "process pool broke mid-sweep; retrying shards serially",
            sweep=label,
            shards=len(failed),
            indices=failed[:16],
        )
        for i in failed:
            outcomes[i] = kernel(shards[i])
    return outcomes, failed  # type: ignore[return-value]


def _drain_heartbeats(hb_queue: Any, monitor: SweepMonitor) -> None:
    """Feed every queued worker heartbeat to the monitor (non-blocking)."""
    while True:
        try:
            hb = hb_queue.get_nowait()
        except queue_mod.Empty:
            return
        except (OSError, ValueError, EOFError):
            # Queue torn down mid-drain (worker death); nothing to read.
            return
        if isinstance(hb, dict):
            monitor.on_worker_heartbeat(hb)


def _dispatch_pool_monitored(
    kernel: Callable[[ShardSpec], ShardOutcome],
    shards: Sequence[ShardSpec],
    workers: int,
    label: str,
    monitor: SweepMonitor,
) -> tuple[list[ShardOutcome], list[int]]:
    """Pool dispatch with a live heartbeat channel and stall watchdog.

    Same contract as :func:`_dispatch_pool` — canonical-order outcomes,
    crash recovery via serial retry — but workers are initialized with a
    ``multiprocessing`` queue (the ``initializer``/``initargs`` channel
    works under both fork and spawn), and the parent alternates between
    waiting on futures and draining heartbeats into the monitor, running
    the stall check each cycle.  If the queue cannot be created the
    sweep falls back to the unmonitored dispatch rather than failing.
    """
    try:
        ctx = multiprocessing.get_context()
        hb_queue = ctx.Queue()
    except (OSError, ValueError):
        return _dispatch_pool(kernel, shards, workers, label)
    outcomes: list[ShardOutcome | None] = [None] * len(shards)
    failed: list[int] = []
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_pool_worker,
            initargs=(hb_queue, monitor.interval, obs_profile.worker_spec()),
        ) as pool:
            futures = {pool.submit(kernel, s): i for i, s in enumerate(shards)}
            pending = set(futures)
            while pending:
                done, pending = wait(
                    pending,
                    timeout=monitor.interval / 2,
                    return_when=FIRST_COMPLETED,
                )
                _drain_heartbeats(hb_queue, monitor)
                monitor.check_stalls()
                for future in done:
                    i = futures[future]
                    try:
                        outcomes[i] = future.result()
                        monitor.on_shard_done(outcomes[i].meta)
                    except BrokenProcessPool:
                        failed.append(i)
        _drain_heartbeats(hb_queue, monitor)
    finally:
        hb_queue.close()
        # The feeder thread may still hold unjoined items from a dying
        # worker; never let interpreter shutdown block on it.
        hb_queue.cancel_join_thread()
    if failed:
        failed.sort()  # completion order is arbitrary; retries are not
        obs.warning(
            "process pool broke mid-sweep; retrying shards serially",
            sweep=label,
            shards=len(failed),
            indices=failed[:16],
        )
        for i in failed:
            outcomes[i] = kernel(shards[i])
            monitor.on_shard_done(outcomes[i].meta)
    return outcomes, failed  # type: ignore[return-value]


def _record_sweep(stats: SweepStats) -> None:
    """Publish a finished sweep to the global tracer (no-op if disabled).

    Besides grafting the stats span and accumulating the ``sweep.*``
    counters, this is where worker-side counter deltas rejoin the
    parent: every shard whose increments landed in a pool worker's
    (otherwise dead) collector — ``counters_local=False`` — is merged
    here, so ``--trace`` counter totals are identical between serial
    and pool runs.  Per-shard wall times feed the
    ``sweep.shard_seconds`` histogram.
    """
    if not obs.enabled():
        return
    obs.attach(stats.span)
    totals = stats.cache_totals()
    parent_pid = os.getpid()
    for meta in stats.shards:
        # A shard's increments only reached *this* collector when it ran
        # in this process with the collector already live.  Forked pool
        # workers inherit an enabled collector (counters_local=True) but
        # increment a doomed copy — the pid comparison catches those.
        if meta.counters and (meta.pid != parent_pid or not meta.counters_local):
            obs.get().add_many(meta.counters)
        obs.observe("sweep.shard_seconds", meta.seconds)
    obs.add("sweep.count")
    obs.add("sweep.pairs", stats.pairs)
    obs.add("sweep.shards", len(stats.shards))
    obs.add("sweep.shards.retried", stats.retried_shards)
    obs.add("sweep.cache.hits", sum(c["hits"] for c in totals.values()))
    obs.add("sweep.cache.misses", sum(c["misses"] for c in totals.values()))
    obs.add("sweep.cache.consultations", stats.cache_consultations())


def _instrumented(
    body: Callable[[ShardSpec], tuple[Any, int]], shard: ShardSpec
) -> ShardOutcome:
    """Run a kernel body and wrap its result with timing + cache deltas.

    The body runs under the *shard's* caching flag (scoped, so the
    serial in-process path restores the caller's state afterwards) —
    this is the propagation point that makes ``sweep_caching(False)``
    reach pool workers.  The resulting cache deltas are the worker-side
    telemetry: an uncached shard must report zero consultations.

    Counter propagation mirrors the caching flag: when the parent was
    tracing (``shard.obs_enabled``) but this process's collector is
    disabled (a pool worker), the collector is enabled for the duration
    of the body so kernel-side ``obs.add`` calls are captured; the
    *deltas* across the body travel back in :attr:`ShardMeta.counters`
    with ``counters_local=False`` so :func:`_record_sweep` can merge
    them into the parent trace exactly once.  When the collector was
    already live the increments land in *this process's* collector and
    are flagged ``counters_local=True`` — that is the parent's own
    collector for the serial path and crash-retried shards (merging
    again would double-count), but a doomed copy in a *forked* pool
    worker, which :func:`_record_sweep` detects by pid mismatch.
    """
    collector = obs.get()
    was_enabled = collector.enabled
    if shard.obs_enabled and not was_enabled:
        collector.enable()
    # Re-activate the sweep's trace context (shipped in the spec because
    # ContextVars don't cross the fork boundary) for the kernel body:
    # each shard becomes its own span id under the sweep's, and any
    # heartbeat or warning emitted inside carries the trace id.
    shard_ctx: TraceContext | None = None
    if shard.trace is not None:
        sweep_ctx = TraceContext.from_tuple(shard.trace)
        if sweep_ctx.sampled:
            shard_ctx = sweep_ctx.child()
    counters_before = dict(collector.counters)
    with sweep_caching(shard.cache_enabled):
        before = sweep_cache_info()
        activation = (
            trace_context.activate(shard_ctx)
            if shard_ctx is not None
            else nullcontext()
        )
        with activation, obs.memory_delta() as mem:
            t0 = time.perf_counter()
            payload, pairs = body(shard)
            seconds = time.perf_counter() - t0
        after = sweep_cache_info()
        obs.add("sweep.kernel.pairs", pairs)
        obs.add("sweep.kernel.shards")
    counter_deltas = {
        name: value - counters_before.get(name, 0)
        for name, value in collector.counters.items()
        if value != counters_before.get(name, 0)
    }
    if not was_enabled:
        collector.disable()
    caches = {
        name: {
            "hits": after[name]["hits"] - before[name]["hits"],
            "misses": after[name]["misses"] - before[name]["misses"],
        }
        for name in after
    }
    meta = ShardMeta(
        n=shard.n,
        mask_lo=shard.mask_lo,
        mask_hi=shard.mask_hi,
        seconds=seconds,
        pairs=pairs,
        caches=caches,
        cache_enabled=shard.cache_enabled,
        pid=os.getpid(),
        counters=counter_deltas,
        counters_local=was_enabled,
        mem_peak_bytes=mem["peak_bytes"],
        mem_net_bytes=mem["net_bytes"],
        trace_id=shard_ctx.trace_id if shard_ctx is not None else "",
        span_id=shard_ctx.span_id if shard_ctx is not None else "",
        parent_span_id=(
            shard_ctx.parent_span_id if shard_ctx is not None else ""
        ),
    )
    return ShardOutcome(payload=payload, meta=meta)


def _resolve_models(names: Sequence[str]) -> dict[str, Any]:
    from repro.models import CC, LC, NN, NW, SC, WN, WW

    registry = {m.name: m for m in (SC, LC, CC, NN, NW, WN, WW)}
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise ValueError(f"unknown model name(s) {unknown!r}")
    return {n: registry[n] for n in names}


def _model_names(models: Sequence) -> tuple[str, ...]:
    return tuple(m if isinstance(m, str) else m.name for m in models)


# ----------------------------------------------------------------------
# Sweep kernels (module-level: they must pickle for the process pool)
# ----------------------------------------------------------------------


def inclusion_kernel(shard: ShardSpec, names: tuple[str, ...]) -> ShardOutcome:
    """Per-shard inclusion refutations over ``names`` (merged by OR).

    The payload is the backend fold's "violation" bitset list
    (:func:`repro.kernels.inclusion_fold`): bit ``j`` of ``bad[i]`` is
    set iff some pair of this shard is in ``names[i]`` but not
    ``names[j]``.  Shards merge by elementwise OR and
    :func:`parallel_inclusion_matrix` negates into the familiar
    inclusion dict at the end — the same conjunction-over-a-partition
    merge as before, one bit per cell instead of one dict entry.
    """
    from repro.models.base import cached_membership

    models = _resolve_models(names)

    def body(shard: ShardSpec) -> tuple[list[int], int]:
        pairs = 0

        def verdict_rows():
            nonlocal pairs
            for comp, phi in shard.iter_pairs():
                pairs += 1
                yield tuple(
                    cached_membership(m, comp, phi) for m in models.values()
                )

        bad = kernels.inclusion_fold(len(names), verdict_rows())
        return bad, pairs

    return _instrumented(body, shard)


def witness_kernel(
    shard: ShardSpec, edges: tuple[tuple[str, str], ...]
) -> ShardOutcome:
    """Per-shard first separation witness for each edge ``(a, b)``.

    An edge asks for a pair in ``b`` but not in ``a``.  All edges share
    one enumeration pass; membership is evaluated lazily per model and at
    most once per pair.  The shard stops early once every edge is
    witnessed locally.
    """
    from repro.models.base import cached_membership
    from repro.models.relations import SeparationWitness

    names = tuple(sorted({x for e in edges for x in e}))
    models = _resolve_models(names)

    def body(shard: ShardSpec) -> tuple[dict, int]:
        found: dict[tuple[str, str], SeparationWitness] = {}
        pairs = 0
        for comp, phi in shard.iter_pairs():
            pairs += 1
            verdicts: dict[str, bool] = {}

            def member(name: str) -> bool:
                if name not in verdicts:
                    verdicts[name] = cached_membership(
                        models[name], comp, phi
                    )
                return verdicts[name]

            for a, b in edges:
                if (a, b) in found:
                    continue
                if member(b) and not member(a):
                    found[(a, b)] = SeparationWitness(comp, phi, b, a)
            if len(found) == len(edges):
                break
        return found, pairs

    return _instrumented(body, shard)


def nonconstructibility_kernel(
    shard: ShardSpec, names: tuple[str, ...]
) -> ShardOutcome:
    """Per-shard first Theorem-12 failure for each named model.

    Fuses what was previously one full universe sweep *per model* into a
    single pass; the model-independent augmentation extensions are shared
    across models through the ``extension_pairs`` cache.
    """
    from repro.models.base import cached_membership
    from repro.models.constructibility import (
        NonconstructibilityWitness,
        augmentation_closed_at,
    )

    models = _resolve_models(names)

    def body(shard: ShardSpec) -> tuple[dict, int]:
        alphabet = shard.universe().alphabet
        found: dict[str, NonconstructibilityWitness] = {}
        pairs = 0
        for comp, phi in shard.iter_pairs():
            pairs += 1
            for name, model in models.items():
                if name in found or not cached_membership(model, comp, phi):
                    continue
                bad = augmentation_closed_at(model, comp, phi, alphabet)
                if bad is not None:
                    found[name] = NonconstructibilityWitness(comp, phi, bad)
            if len(found) == len(names):
                break
        return found, pairs

    return _instrumented(body, shard)


def lattice_battery_kernel(
    shard: ShardSpec,
    edges: tuple[tuple[str, str], ...],
    constructibility: tuple[str, ...],
    thm23_probes: tuple | None,
) -> ShardOutcome:
    """One enumeration pass answering the whole Figure-1/Theorem-23 battery.

    Fuses the separation-witness, nonconstructibility and Theorem-23
    sweeps over a single shard scan: each pair's membership verdicts are
    computed lazily at most once and shared by every question, and the
    model-independent augmentation extensions are shared by every
    closure test.  This locality is what the per-question sweeps of the
    seed code structurally could not exploit.
    """
    from repro.models.base import cached_membership
    from repro.models.constructibility import (
        NonconstructibilityWitness,
        augmentation_closed_at,
    )
    from repro.models.relations import SeparationWitness

    names = sorted(
        {x for e in edges for x in e}
        | set(constructibility)
        | ({"NN", "LC"} if thm23_probes is not None else set())
    )
    models = _resolve_models(names)
    # Constructibility (a ``None`` verdict) and Theorem-23 counts need the
    # full scan; a shard may only stop early when every question it was
    # asked is a first-witness search and all are locally answered.
    may_break = not constructibility and thm23_probes is None

    def body(shard: ShardSpec) -> tuple[dict, int]:
        alphabet = shard.universe().alphabet
        found_w: dict[tuple[str, str], SeparationWitness] = {}
        found_nc: dict[str, NonconstructibilityWitness] = {}
        lc_in_nn = nn_minus_lc = stuck = 0
        pairs = 0
        for comp, phi in shard.iter_pairs():
            pairs += 1
            verdicts: dict[str, bool] = {}

            def member(name: str) -> bool:
                if name not in verdicts:
                    verdicts[name] = cached_membership(
                        models[name], comp, phi
                    )
                return verdicts[name]

            for a, b in edges:
                if (a, b) not in found_w and member(b) and not member(a):
                    found_w[(a, b)] = SeparationWitness(comp, phi, b, a)
            if thm23_probes is not None and member("NN"):
                if member("LC"):
                    lc_in_nn += 1
                else:
                    nn_minus_lc += 1
                    if (
                        augmentation_closed_at(
                            models["NN"], comp, phi, thm23_probes
                        )
                        is not None
                    ):
                        stuck += 1
            for name in constructibility:
                if name in found_nc or not member(name):
                    continue
                bad = augmentation_closed_at(
                    models[name], comp, phi, alphabet
                )
                if bad is not None:
                    found_nc[name] = NonconstructibilityWitness(
                        comp, phi, bad
                    )
            if may_break and len(found_w) == len(edges):
                break
        payload = {
            "witnesses": found_w,
            "nonconstructibility": found_nc,
            "thm23": (lc_in_nn, nn_minus_lc, stuck),
        }
        return payload, pairs

    return _instrumented(body, shard)


def thm23_kernel(shard: ShardSpec, probes: tuple) -> ShardOutcome:
    """Per-shard Theorem 23 counts: (LC∩NN pairs, NN∖LC pairs, pruned)."""
    from repro.models import LC, NN
    from repro.models.base import cached_membership
    from repro.models.constructibility import augmentation_closed_at

    def body(shard: ShardSpec) -> tuple[tuple[int, int, int], int]:
        lc_in_nn = total = stuck = 0
        pairs = 0
        for comp, phi in shard.iter_pairs():
            pairs += 1
            if not cached_membership(NN, comp, phi):
                continue
            if cached_membership(LC, comp, phi):
                lc_in_nn += 1
                continue
            total += 1
            if augmentation_closed_at(NN, comp, phi, probes) is not None:
                stuck += 1
        return (lc_in_nn, total, stuck), pairs

    return _instrumented(body, shard)


# ----------------------------------------------------------------------
# Public sweeps (plan → dispatch → deterministic merge)
# ----------------------------------------------------------------------


def _plan(
    universe: Universe, jobs: int | None, parallel_threshold: int | None
) -> tuple[list[ShardSpec], int]:
    jobs_eff = effective_jobs(jobs)
    threshold = (
        PARALLEL_THRESHOLD if parallel_threshold is None else parallel_threshold
    )
    if jobs_eff > 1 and _total_computations(universe) < threshold:
        jobs_eff = 1
    return make_shards(universe, jobs_eff), jobs_eff


def parallel_inclusion_matrix(
    models: Sequence,
    universe: Universe,
    jobs: int | None = None,
    parallel_threshold: int | None = None,
) -> tuple[dict[tuple[str, str], bool], SweepStats]:
    """Sharded :func:`repro.models.relations.inclusion_matrix`.

    Merge is a conjunction over shards: an inclusion holds on the
    universe iff it holds on every slice of the partition.
    """
    names = _model_names(models)
    shards, jobs_eff = _plan(universe, jobs, parallel_threshold)
    payloads, stats = run_shards(
        partial(inclusion_kernel, names=names),
        shards,
        jobs=jobs_eff,
        label="inclusion-matrix",
    )
    with obs.span("merge", sweep="inclusion-matrix"):
        bad = [0] * len(names)
        for shard_bad in payloads:
            for i, mask in enumerate(shard_bad):
                bad[i] |= mask
        included = {
            (x, y): not (bad[i] >> j) & 1
            for i, x in enumerate(names)
            for j, y in enumerate(names)
        }
    return included, stats


def parallel_separation_witnesses(
    edges: Sequence[tuple[str, str]],
    universe: Universe,
    jobs: int | None = None,
    parallel_threshold: int | None = None,
) -> tuple[dict[tuple[str, str], Any], SweepStats]:
    """Sharded multi-edge witness search; first witness per edge.

    Shards are merged in canonical order, so each edge's witness is the
    first one the *serial* enumeration would have found (witness
    minimality in node count is preserved).
    """
    edges = tuple(edges)
    shards, jobs_eff = _plan(universe, jobs, parallel_threshold)
    payloads, stats = run_shards(
        partial(witness_kernel, edges=edges),
        shards,
        jobs=jobs_eff,
        label="separation-witnesses",
    )
    with obs.span("merge", sweep="separation-witnesses"):
        merged: dict[tuple[str, str], Any] = {edge: None for edge in edges}
        for shard_found in payloads:  # payloads follow canonical shard order
            for edge in edges:
                if merged[edge] is None and edge in shard_found:
                    merged[edge] = shard_found[edge]
    return merged, stats


def parallel_nonconstructibility_witnesses(
    models: Sequence,
    universe: Universe,
    jobs: int | None = None,
    parallel_threshold: int | None = None,
) -> tuple[dict[str, Any], SweepStats]:
    """Sharded Theorem-12 sweep for every model at once; first witness per
    model in canonical order (``None`` = augmentation-closed on the
    universe, i.e. consistent with constructibility)."""
    names = _model_names(models)
    shards, jobs_eff = _plan(universe, jobs, parallel_threshold)
    payloads, stats = run_shards(
        partial(nonconstructibility_kernel, names=names),
        shards,
        jobs=jobs_eff,
        label="nonconstructibility",
    )
    with obs.span("merge", sweep="nonconstructibility"):
        merged: dict[str, Any] = {name: None for name in names}
        for shard_found in payloads:
            for name in names:
                if merged[name] is None and name in shard_found:
                    merged[name] = shard_found[name]
    return merged, stats


@dataclass
class LatticeBatteryResult:
    """Merged output of :func:`parallel_lattice_battery`.

    ``witnesses[(a, b)]`` — first pair in ``b ∖ a`` in canonical order,
    or ``None``.  ``nonconstructibility[m]`` — first Theorem-12 failure
    for model ``m``, or ``None`` (augmentation-closed on the universe).
    ``thm23`` — ``(lc_in_nn, nn_minus_lc, pruned)`` counts, all zero when
    no probes were requested.
    """

    witnesses: dict[tuple[str, str], Any] = field(default_factory=dict)
    nonconstructibility: dict[str, Any] = field(default_factory=dict)
    thm23: tuple[int, int, int] = (0, 0, 0)


def parallel_lattice_battery(
    universe: Universe,
    edges: Sequence[tuple[str, str]] = (),
    constructibility: Sequence = (),
    thm23_probes: Sequence | None = None,
    jobs: int | None = None,
    parallel_threshold: int | None = None,
) -> tuple[LatticeBatteryResult, SweepStats]:
    """The fused Figure-1/Theorem-23 battery over one universe.

    Answers every requested question — separation witnesses for
    ``edges``, Theorem-12 constructibility for ``constructibility``
    models, Theorem-23 counts when ``thm23_probes`` is given — in a
    single sharded enumeration pass.  Merging follows canonical shard
    order, so first-witness results are bit-identical to the serial
    per-question sweeps; counts merge by summation.
    """
    edges = tuple(edges)
    nc_names = _model_names(constructibility)
    probes = None if thm23_probes is None else tuple(thm23_probes)
    shards, jobs_eff = _plan(universe, jobs, parallel_threshold)
    payloads, stats = run_shards(
        partial(
            lattice_battery_kernel,
            edges=edges,
            constructibility=nc_names,
            thm23_probes=probes,
        ),
        shards,
        jobs=jobs_eff,
        label="lattice-battery",
    )
    with obs.span("merge", sweep="lattice-battery"):
        result = LatticeBatteryResult(
            witnesses={edge: None for edge in edges},
            nonconstructibility={name: None for name in nc_names},
        )
        lc_in_nn = nn_minus_lc = stuck = 0
        for payload in payloads:  # canonical shard order
            for edge in edges:
                if result.witnesses[edge] is None:
                    result.witnesses[edge] = payload["witnesses"].get(edge)
            for name in nc_names:
                if result.nonconstructibility[name] is None:
                    result.nonconstructibility[name] = payload[
                        "nonconstructibility"
                    ].get(name)
            a, b, c = payload["thm23"]
            lc_in_nn += a
            nn_minus_lc += b
            stuck += c
        result.thm23 = (lc_in_nn, nn_minus_lc, stuck)
    return result, stats


def parallel_thm23_counts(
    universe: Universe,
    probes: Sequence,
    jobs: int | None = None,
    parallel_threshold: int | None = None,
) -> tuple[tuple[int, int, int], SweepStats]:
    """Sharded Theorem-23 sweep: ``(lc_in_nn, nn_minus_lc, pruned)``.

    Counts are merged by summation, which is order-independent.
    """
    shards, jobs_eff = _plan(universe, jobs, parallel_threshold)
    payloads, stats = run_shards(
        partial(thm23_kernel, probes=tuple(probes)),
        shards,
        jobs=jobs_eff,
        label="thm23-counts",
    )
    with obs.span("merge", sweep="thm23-counts"):
        lc_in_nn = sum(p[0] for p in payloads)
        total = sum(p[1] for p in payloads)
        stuck = sum(p[2] for p in payloads)
    return (lc_in_nn, total, stuck), stats
