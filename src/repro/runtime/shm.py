"""Zero-copy shared enumeration universes (``REPRO_SHM``).

A pool sweep's unit of work is a :class:`~repro.runtime.parallel.ShardSpec`
— a few integers from which every worker *regenerates* its slice of the
enumeration space.  Regeneration is pure compute: ``ordered_dags`` builds
and cycle-checks a :class:`~repro.dag.digraph.Dag` per edge mask, and
``ObserverFunction.enumerate_all`` re-derives every observer row from
Definition 2's candidate sets (which needs the transitive closure).  This
module moves that work to the dispatcher: the parent enumerates the
universe **once**, packs it into a compact byte encoding inside one
``multiprocessing.shared_memory`` block, and workers attach the block
read-only (the kernel maps the same physical pages into every worker —
zero copies, no pickling, no pipes) and *decode* their rows back into
``(Computation, ObserverFunction)`` pairs in canonical order.

Encoding (all offsets derived from ``rows``/``max_nodes``/``locations``,
no per-block header):

* ``keys``  — ``rows × 8`` bytes, little-endian ``u64`` per pair:
  ``(n << 32) | edge_mask``.  Sizes and masks of this library's bounded
  universes are tiny (``n ≤ 8``, ``mask < 2^28``), which the packer
  checks.
* ``ops``   — ``rows × max_nodes`` bytes: per node, the index of its op
  in the universe alphabet; ``0xFF`` pads unused node slots.
* ``phi``   — ``rows × |locations| × max_nodes`` bytes: the observed
  writer node id per (location, node), ``0xFF`` for ``⊥`` (and padding).

Decoding reconstructs the dag from the edge mask (the
``combinations(range(n), 2)`` bit convention of
:func:`repro.dag.enumerate.ordered_dags`), shares the
``Computation`` across consecutive rows with equal key+ops, and builds
observers with ``validate=False`` — every encoded row came from a valid
observer function, so Definition 2 holds by construction.  Decoded pairs
compare equal to regenerated ones, which the suite pins.

Lifecycle: the dispatcher (:func:`repro.runtime.parallel.run_shards`)
owns the segment — created right before dispatch, unlinked in a
``finally`` that also covers crash-retried shards and
``KeyboardInterrupt``.  The name stays registered with the
``multiprocessing`` resource tracker until that unlink, so even a
SIGKILLed parent leaves no segment behind (the tracker sweeps it at
tree shutdown).  Workers attach lazily on first decode and cache the
mapping per process; a failed attach falls back to regeneration with a
structured warning and an ``shm.fallback`` counter — sweeps degrade,
never break.

``REPRO_SHM=auto`` (default) shares the universe only for pool
dispatch; ``1`` forces sharing even on the serial path (the lifecycle
tests use this); ``0`` disables it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from itertools import combinations
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro import obs
from repro.core.computation import Computation
from repro.core.observer import ObserverFunction
from repro.dag.digraph import Dag
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.parallel import ShardSpec

__all__ = [
    "ShmSlice",
    "SharedUniverse",
    "shm_mode",
    "share_universe",
    "shard_pairs",
]

_ENV_VAR = "REPRO_SHM"
_MODES = ("auto", "0", "1")

_BOT = 0xFF
"""Byte encoding of ``⊥`` in observer rows (and of unused pad slots)."""

MAX_ENCODABLE_NODES = 8
"""Node ids and alphabet indexes must fit a byte and masks a ``u32``;
``C(8, 2) = 28`` candidate edges is the binding constraint.  Bounded
universes are ``n ≤ 5`` in practice, so the packer refusing larger
sizes (falling back to regeneration) costs nothing real."""


def shm_mode() -> str:
    """The requested sharing mode: ``"auto"``, ``"0"`` or ``"1"``."""
    raw = os.environ.get(_ENV_VAR, "auto").strip().lower() or "auto"
    if raw in ("off", "false", "no"):
        raw = "0"
    elif raw in ("on", "true", "yes"):
        raw = "1"
    if raw not in _MODES:
        raise ConfigError(
            f"{_ENV_VAR} must be one of {'/'.join(_MODES)}, got {raw!r}"
        ) from None
    return raw


@dataclass(frozen=True)
class ShmSlice:
    """A shard's read-only view into a shared universe block.

    ``name`` is the OS-level segment name; ``rows`` the block's total
    pair count (it fixes the section offsets); ``[start, stop)`` the
    row range holding this shard's pairs in canonical order.  Everything
    else a decoder needs (node bound, locations, alphabet) already
    travels on the :class:`~repro.runtime.parallel.ShardSpec`.
    """

    name: str
    rows: int
    start: int
    stop: int


class SharedUniverse:
    """The dispatcher's owning handle on one packed universe segment."""

    def __init__(self, shm: shared_memory.SharedMemory, rows: int) -> None:
        self._shm: shared_memory.SharedMemory | None = shm
        self.name = shm.name
        self.rows = rows
        self.nbytes = shm.size

    def close(self) -> None:
        """Close and unlink the segment (idempotent).

        Workers that already mapped the block keep their view until
        process exit — unlink only removes the name, exactly the
        semantics the crash-retry path needs.
        """
        shm, self._shm = self._shm, None
        if shm is None:
            return
        _drop_attached(self.name)
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedUniverse":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Packing (dispatcher side)
# ----------------------------------------------------------------------


def _edge_mask(dag: Dag, pair_bit: dict[tuple[int, int], int]) -> int:
    mask = 0
    for edge in dag.edges:
        mask |= 1 << pair_bit[edge]
    return mask


def share_universe(
    shards: Sequence["ShardSpec"],
) -> tuple[SharedUniverse, list[ShmSlice]]:
    """Enumerate the shards' pairs once and pack them into shared memory.

    Returns the owning handle plus one :class:`ShmSlice` per input
    shard (in order).  Shards must agree on their universe parameters
    (they always do — :func:`~repro.runtime.parallel.make_shards`
    partitions one universe).  Raises on anything unpackable; the
    caller treats any failure as "regenerate in workers".
    """
    if not shards:
        raise ValueError("share_universe: no shards")
    first = shards[0]
    params = (first.max_nodes, first.locations, first.include_nop)
    if any(
        (s.max_nodes, s.locations, s.include_nop) != params for s in shards
    ):
        raise ValueError("share_universe: shards span different universes")
    if first.max_nodes > MAX_ENCODABLE_NODES:
        raise ValueError(
            f"share_universe: max_nodes {first.max_nodes} exceeds the "
            f"byte-packed bound {MAX_ENCODABLE_NODES}"
        )
    universe = first.universe()
    locs = universe.locations
    alphabet = universe.alphabet
    if len(alphabet) >= _BOT:
        raise ValueError("share_universe: alphabet too large to byte-encode")
    alpha_index = {op: i for i, op in enumerate(alphabet)}
    m = first.max_nodes
    width = len(locs) * m

    keys = bytearray()
    ops_buf = bytearray()
    phi_buf = bytearray()
    ranges: list[tuple[int, int]] = []
    rows = 0
    for spec in shards:
        start = rows
        pair_bit = {
            e: i for i, e in enumerate(combinations(range(spec.n), 2))
        }
        last_comp: Computation | None = None
        key_b = b""
        ops_b = b""
        for comp, phi in universe.pairs(spec.n, (spec.mask_lo, spec.mask_hi)):
            if comp is not last_comp:
                key = (spec.n << 32) | _edge_mask(comp.dag, pair_bit)
                key_b = key.to_bytes(8, "little")
                ops_b = bytes(
                    alpha_index[comp.op(u)] for u in range(spec.n)
                ) + b"\xff" * (m - spec.n)
                last_comp = comp
            keys += key_b
            ops_buf += ops_b
            row_start = len(phi_buf)
            for loc in locs:
                row = phi.row(loc)
                phi_buf += bytes(
                    _BOT if v is None else v for v in row
                ) + b"\xff" * (m - spec.n)
            assert len(phi_buf) - row_start == width
            rows += 1
        ranges.append((start, rows))

    total = len(keys) + len(ops_buf) + len(phi_buf)
    shm = shared_memory.SharedMemory(create=True, size=max(1, total))
    try:
        buf = shm.buf
        buf[: len(keys)] = keys
        off = len(keys)
        buf[off : off + len(ops_buf)] = ops_buf
        off += len(ops_buf)
        buf[off : off + len(phi_buf)] = phi_buf
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    handle = SharedUniverse(shm, rows)
    obs.add("shm.created")
    obs.add("shm.bytes", handle.nbytes)
    obs.add("shm.pairs", rows)
    return handle, [
        ShmSlice(name=shm.name, rows=rows, start=a, stop=b)
        for a, b in ranges
    ]


# ----------------------------------------------------------------------
# Attaching + decoding (worker side)
# ----------------------------------------------------------------------

_ATTACHED: dict[str, shared_memory.SharedMemory] = {}
"""Per-process attach cache: pool workers decode many shards from the
same block; mapping once per process keeps attach cost off the per-shard
path.  The dispatcher purges its own entry on unlink."""


def _attach(name: str) -> shared_memory.SharedMemory:
    shm = _ATTACHED.get(name)
    if shm is None:
        # Attaching re-registers the name with the resource tracker.
        # Workers are always children of the dispatcher, so there is
        # one tracker daemon with one name *set*: the re-registration
        # dedups, the dispatcher's ``unlink()`` unregisters exactly
        # once, and unregistering here instead would strip the
        # creator's entry and make that unlink KeyError inside the
        # tracker.  (The tracker still sweeps the segment if the whole
        # tree dies before the dispatcher's ``finally`` runs.)
        shm = shared_memory.SharedMemory(name=name)
        _ATTACHED[name] = shm
    return shm


def _drop_attached(name: str) -> None:
    shm = _ATTACHED.pop(name, None)
    if shm is not None:
        try:
            shm.close()
        except Exception:  # pragma: no cover - best effort
            pass


def shard_pairs(
    spec: "ShardSpec",
) -> Iterator[tuple[Computation, ObserverFunction]]:
    """Decode a shard's pairs from its shared universe block.

    The attach happens *eagerly* so that a vanished or corrupt segment
    raises here, where :meth:`ShardSpec.iter_pairs` can still fall back
    to regeneration; only then is the lazy decode generator returned.
    """
    ref = spec.shm
    assert ref is not None
    shm = _attach(ref.name)
    universe = spec.universe()
    m = spec.max_nodes
    width = len(universe.locations) * m
    need = ref.rows * (8 + m + width)
    if shm.size < need:
        raise ValueError(
            f"shared universe {ref.name!r} truncated: "
            f"{shm.size} bytes < {need} expected"
        )
    obs.add("shm.attach")
    return _decode(shm, ref, universe.locations, universe.alphabet, m)


def _decode(
    shm: shared_memory.SharedMemory,
    ref: ShmSlice,
    locs: tuple[Any, ...],
    alphabet: tuple[Any, ...],
    m: int,
) -> Iterator[tuple[Computation, ObserverFunction]]:
    buf = shm.buf
    ops_off = 8 * ref.rows
    phi_off = ops_off + ref.rows * m
    width = len(locs) * m
    last_key = -1
    last_ops = b""
    dag: Dag | None = None
    comp: Computation | None = None
    pairs: list[tuple[int, int]] = []
    for r in range(ref.start, ref.stop):
        key = int.from_bytes(buf[8 * r : 8 * r + 8], "little")
        n = key >> 32
        o = ops_off + r * m
        ops_b = bytes(buf[o : o + n])
        if key != last_key or ops_b != last_ops or comp is None:
            if key != last_key or dag is None:
                mask = key & 0xFFFFFFFF
                pairs = list(combinations(range(n), 2))
                dag = Dag(
                    n,
                    (
                        pairs[i]
                        for i in range(len(pairs))
                        if mask & (1 << i)
                    ),
                )
                last_key = key
            comp = Computation(dag, tuple(alphabet[b] for b in ops_b))
            last_ops = ops_b
        mapping = {}
        base = phi_off + r * width
        for li, loc in enumerate(locs):
            row = bytes(buf[base + li * m : base + li * m + n])
            if row.strip(b"\xff"):
                mapping[loc] = tuple(
                    None if b == _BOT else b for b in row
                )
        yield comp, ObserverFunction(comp, mapping, validate=False)
