"""Execution traces and partial observer functions.

Because simulated memories store *writer node ids* as values, an
execution trace directly records, for every read, the write it observed.
That is precisely a partial observer function: constrained at reads (the
observed writer) and at writes (themselves, by condition 2.3), free
everywhere else.  Post-mortem verification (:mod:`repro.verify`) then
asks whether the partial function *completes* to a member of a model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping

from repro.core.computation import Computation
from repro.core.observer import ObserverFunction
from repro.core.ops import Location
from repro.errors import InvalidObserverError
from repro.runtime.scheduler import Schedule

if TYPE_CHECKING:  # verify imports runtime; keep the cycle static-only
    from repro.verify.sanitizer import SanitizerViolation

__all__ = ["ReadEvent", "ExecutionTrace", "PartialObserver"]


@dataclass(frozen=True)
class ReadEvent:
    """One read operation's outcome."""

    node: int
    loc: Location
    observed: int | None  # writer node id, or None for ⊥


@dataclass
class ExecutionTrace:
    """The observable outcome of executing a schedule against a memory.

    ``violation`` is set by the executor when a sanitizer was attached
    and flagged an event (see :mod:`repro.verify.sanitizer`); a halting
    sanitizer also truncates ``reads`` at the violating event.
    """

    comp: Computation
    schedule: Schedule
    memory_name: str
    reads: list[ReadEvent] = field(default_factory=list)
    violation: "SanitizerViolation | None" = None

    def partial_observer(self) -> "PartialObserver":
        """The partial observer function this trace determines."""
        constraints: dict[Location, dict[int, int | None]] = {}
        for ev in self.reads:
            constraints.setdefault(ev.loc, {})[ev.node] = ev.observed
        # Writes constrain themselves (condition 2.3).
        for u in self.comp.nodes():
            op = self.comp.op(u)
            if op.is_write:
                constraints.setdefault(op.loc, {})[u] = u
        return PartialObserver(self.comp, constraints)


class PartialObserver:
    """An observer function constrained only at some (location, node) pairs.

    Invariants of Definition 2 are enforced on the constrained entries:
    observed nodes must write the location, a node must not precede its
    observed write, and constrained writes must observe themselves.

    ``constraints[loc][node]`` is the observed writer (``None`` = ⊥).
    Unconstrained entries are existentially quantified by the verifiers.
    """

    __slots__ = ("comp", "_constraints")

    def __init__(
        self,
        comp: Computation,
        constraints: Mapping[Location, Mapping[int, int | None]],
    ) -> None:
        self.comp = comp
        norm: dict[Location, dict[int, int | None]] = {}
        for loc, entries in constraints.items():
            row: dict[int, int | None] = {}
            for u, v in entries.items():
                op = comp.op(u)
                if op.writes(loc) and v != u:
                    raise InvalidObserverError(
                        f"write node {u} must observe itself at {loc!r}"
                    )
                if v is not None:
                    if not comp.op(v).writes(loc):
                        raise InvalidObserverError(
                            f"constraint Φ({loc!r}, {u}) = {v}: not a write to {loc!r}"
                        )
                    if comp.precedes(u, v):
                        raise InvalidObserverError(
                            f"constraint Φ({loc!r}, {u}) = {v}: node precedes it"
                        )
                row[int(u)] = v
            if row:
                norm[loc] = row
        self._constraints = norm

    @property
    def locations(self) -> tuple[Location, ...]:
        """Locations with at least one constraint, sorted by repr."""
        return tuple(sorted(self._constraints, key=repr))

    def constrained(self, loc: Location) -> dict[int, int | None]:
        """The constrained entries at one location (node → value)."""
        return dict(self._constraints.get(loc, {}))

    def entries(self) -> Iterator[tuple[Location, int, int | None]]:
        """Iterate all constraints as ``(loc, node, value)`` triples."""
        for loc, row in self._constraints.items():
            for u, v in row.items():
                yield loc, u, v

    def num_constraints(self) -> int:
        """Total number of constrained entries."""
        return sum(len(row) for row in self._constraints.values())

    def is_completion(self, phi: ObserverFunction) -> bool:
        """True iff the total observer ``phi`` agrees with every constraint."""
        return all(
            phi.value(loc, u) == v for loc, u, v in self.entries()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        total = self.num_constraints()
        return (
            f"PartialObserver(n={self.comp.num_nodes}, "
            f"locations={len(self._constraints)}, constraints={total})"
        )
