"""Page-granular BACKER: false sharing, and the diff-based fix.

The real BACKER moved whole *pages* between caches and the backing
store, not single locations.  Coarse granularity introduces the classic
**false-sharing hazard**: two processors write different locations that
share a page; whichever reconciles *last* writes back its entire page
copy — including its stale view of the other location — silently
destroying the other processor's update.  The resulting execution can
violate location consistency, and our post-mortem verifier catches it
(that demonstration is a benchmark, not a bug).

The production fix is *diff-based reconciliation* (as in TreadMarks-
style DSM, and as the Cilk runtime effectively obtained by restricting
programs): on fetch, keep a **twin** of the page; on reconcile, write
back only the words that differ from the twin.  Concurrent writers to
disjoint locations then merge instead of clobbering, and LC holds again.

:class:`PagedBackerMemory` implements both modes:

* ``reconcile_mode="clobber"`` — whole-page writeback (the hazard);
* ``reconcile_mode="diff"`` — twin/diff writeback (the fix).

Pages are defined by a ``page_of`` function mapping locations to page
ids; the default maps every location to its own page, which makes the
memory behave exactly like :class:`~repro.runtime.backer.BackerMemory`
(a property the tests check).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.core.ops import Location
from repro.dag.random_dags import as_rng
from repro.runtime.memory_base import MemorySystem

__all__ = ["PagedBackerMemory", "PagedStats", "modulo_pager"]

PageId = Hashable


def modulo_pager(num_pages: int) -> Callable[[Location], PageId]:
    """A pager hashing locations onto ``num_pages`` pages.

    Deterministic across runs (uses ``hash`` of the repr, not the salted
    builtin object hash, for stable experiment layouts).
    """

    def page_of(loc: Location) -> PageId:
        import zlib

        return zlib.crc32(repr(loc).encode()) % num_pages

    return page_of


@dataclass
class PagedStats:
    """Transfer counters for one execution (units: whole pages)."""

    page_fetches: int = 0
    page_writebacks: int = 0
    diffed_words: int = 0
    clobbered_words: int = 0
    cache_hits: int = 0

    @property
    def fetches(self) -> int:
        """Alias so the timed simulator prices page fetches like lines."""
        return self.page_fetches

    @property
    def writebacks(self) -> int:
        """Alias so the timed simulator prices page writebacks like lines."""
        return self.page_writebacks


class PagedBackerMemory(MemorySystem):
    """BACKER over pages, with clobber or diff reconciliation."""

    def __init__(
        self,
        page_of: Callable[[Location], PageId] | None = None,
        reconcile_mode: str = "diff",
        rng: random.Random | int | None = None,
    ) -> None:
        if reconcile_mode not in ("diff", "clobber"):
            raise ValueError(f"unknown reconcile_mode {reconcile_mode!r}")
        self.page_of = page_of or (lambda loc: ("page", repr(loc)))
        self.reconcile_mode = reconcile_mode
        self._rng = as_rng(rng)
        # Backing store: page -> {loc: writer id}.
        self._main: dict[PageId, dict[Location, int]] = {}
        # Caches: per proc, page -> (copy, twin, dirty flag).  The copy
        # and twin are {loc: writer id} snapshots.
        self._caches: list[
            dict[PageId, tuple[dict[Location, int], dict[Location, int], bool]]
        ] = []
        self.stats = PagedStats()

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"paged-backer[{self.reconcile_mode}]"

    def attach(self, num_procs: int) -> None:
        self._main = {}
        self._caches = [dict() for _ in range(num_procs)]
        self.stats = PagedStats()

    # ------------------------------------------------------------------
    # Page movement
    # ------------------------------------------------------------------

    def _fetch(self, proc: int, page: PageId) -> dict[Location, int]:
        cache = self._caches[proc]
        entry = cache.get(page)
        if entry is not None:
            self.stats.cache_hits += 1
            return entry[0]
        self.stats.page_fetches += 1
        copy = dict(self._main.get(page, {}))
        twin = dict(copy)
        cache[page] = (copy, twin, False)
        return copy

    def _reconcile_page(self, page: PageId, copy, twin) -> None:
        main = self._main.setdefault(page, {})
        if self.reconcile_mode == "clobber":
            # Whole-page writeback: stale words overwrite main.
            self.stats.clobbered_words += len(copy)
            main.clear()
            main.update(copy)
        else:
            # Diff against the twin: only locally-modified words move.
            for loc, value in copy.items():
                if twin.get(loc) != value:
                    main[loc] = value
                    self.stats.diffed_words += 1

    def _reconcile_all(self, proc: int) -> None:
        cache = self._caches[proc]
        for page, (copy, twin, dirty) in list(cache.items()):
            if dirty:
                self.stats.page_writebacks += 1
                self._reconcile_page(page, copy, twin)
                cache[page] = (copy, dict(copy), False)

    def _flush_all(self, proc: int) -> None:
        self._reconcile_all(proc)
        self._caches[proc].clear()

    # ------------------------------------------------------------------
    # MemorySystem interface
    # ------------------------------------------------------------------

    def read(self, proc: int, node: int, loc: Location) -> int | None:
        page = self.page_of(loc)
        copy = self._fetch(proc, page)
        return copy.get(loc)

    def write(self, proc: int, node: int, loc: Location) -> None:
        page = self.page_of(loc)
        copy = self._fetch(proc, page)
        copy[loc] = node
        entry = self._caches[proc][page]
        self._caches[proc][page] = (entry[0], entry[1], True)

    def node_starting(self, proc: int, node: int, cross_pred: bool) -> None:
        if cross_pred:
            self._flush_all(proc)

    def node_completed(self, proc: int, node: int, cross_succ: bool) -> None:
        if cross_succ:
            self._reconcile_all(proc)
