"""Deterministic replay of dumped traces.

A dumped trace (:func:`repro.io.dump_trace`) carries everything needed
to re-run the execution: the computation, the placement and timing, and
the observed reads.  :func:`replay` re-executes the schedule against a
fresh memory and compares read-for-read — the regression-detection loop
of a memory-system developer:

* replaying against the *same* protocol must reproduce the reads exactly
  (all our memories are deterministic given the schedule and their RNG
  seed);
* replaying against a *different* protocol diffs the behaviours, read
  event by read event (e.g. where exactly BACKER diverges from an
  eagerly coherent memory on the same schedule).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ops import Location
from repro.runtime.executor import execute
from repro.runtime.memory_base import MemorySystem
from repro.runtime.trace import ExecutionTrace

__all__ = ["ReadDivergence", "ReplayResult", "replay"]


@dataclass(frozen=True)
class ReadDivergence:
    """One read that observed different writers in the two executions."""

    node: int
    loc: Location
    original: int | None
    replayed: int | None


@dataclass
class ReplayResult:
    """Outcome of a replay."""

    identical: bool
    divergences: list[ReadDivergence] = field(default_factory=list)
    replayed_trace: ExecutionTrace | None = None


def replay(trace: ExecutionTrace, memory: MemorySystem) -> ReplayResult:
    """Re-execute a trace's schedule against ``memory`` and diff reads.

    The schedule (placement + timing) is taken verbatim from the trace,
    so the comparison isolates the memory system's behaviour.
    """
    new_trace = execute(trace.schedule, memory)
    original = {(e.node, e.loc): e.observed for e in trace.reads}
    replayed = {(e.node, e.loc): e.observed for e in new_trace.reads}
    assert set(original) == set(replayed), (
        "replay executed a different read set — schedule corruption"
    )
    divergences = [
        ReadDivergence(node, loc, original[(node, loc)], replayed[(node, loc)])
        for (node, loc) in sorted(original, key=lambda k: (k[0], repr(k[1])))
        if original[(node, loc)] != replayed[(node, loc)]
    ]
    return ReplayResult(
        identical=not divergences,
        divergences=divergences,
        replayed_trace=new_trace,
    )
