"""Schedulers: mapping computations onto simulated processors.

The paper's central move is separating the *computation* (logical
dependencies) from the *schedule* (which processor executes what, when).
This module produces schedules; :mod:`repro.runtime.executor` runs them
against a memory system.  Memory-model verdicts must be independent of
the schedule — the ``bench_schedule_independence`` benchmark checks
exactly that.

Two schedulers are provided, both discrete-time with unit-work nodes:

* :func:`greedy_schedule` — a global ready queue; every idle processor
  takes the oldest ready node each step (Graham list scheduling; this is
  the "greedy scheduler" of the Cilk performance bounds).
* :func:`work_stealing_schedule` — per-processor deques with randomized
  stealing, modelling the Cilk runtime: a completed node enables
  successors onto its processor's deque bottom; owners pop from the
  bottom; thieves steal from the top of a uniformly random victim.

Both produce a :class:`Schedule` (validated against dag precedence).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass

from repro.core.computation import Computation
from repro.dag.random_dags import as_rng
from repro.errors import ScheduleError

__all__ = ["Schedule", "greedy_schedule", "work_stealing_schedule", "serial_schedule"]


@dataclass(frozen=True)
class Schedule:
    """A placed-and-timed execution of a computation.

    Attributes
    ----------
    comp:
        The scheduled computation.
    proc_of:
        Processor id per node.
    start_of:
        Start step per node (each node occupies one unit of time).
    num_procs:
        Number of processors used.
    """

    comp: Computation
    proc_of: tuple[int, ...]
    start_of: tuple[int, ...]
    num_procs: int

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check well-formedness: precedence and processor exclusivity."""
        comp = self.comp
        n = comp.num_nodes
        if len(self.proc_of) != n or len(self.start_of) != n:
            raise ScheduleError("schedule arrays must cover every node")
        for (u, v) in comp.dag.edges:
            if self.start_of[u] + 1 > self.start_of[v]:
                raise ScheduleError(
                    f"edge ({u}, {v}) violated: {u} finishes at "
                    f"{self.start_of[u] + 1} but {v} starts at {self.start_of[v]}"
                )
        busy: set[tuple[int, int]] = set()
        for u in range(n):
            key = (self.proc_of[u], self.start_of[u])
            if key in busy:
                raise ScheduleError(f"processor collision at {key}")
            busy.add(key)

    @property
    def makespan(self) -> int:
        """Total number of time steps."""
        if not self.start_of:
            return 0
        return max(self.start_of) + 1

    def execution_order(self) -> list[int]:
        """Nodes in global execution order (time, then processor id).

        The executor serializes same-step nodes by processor id; any
        serialization of truly concurrent unit-time nodes is legitimate.
        """
        return sorted(
            self.comp.nodes(), key=lambda u: (self.start_of[u], self.proc_of[u])
        )

    def nodes_on(self, proc: int) -> list[int]:
        """Nodes executed by one processor, in time order."""
        return sorted(
            (u for u in self.comp.nodes() if self.proc_of[u] == proc),
            key=lambda u: self.start_of[u],
        )


def serial_schedule(comp: Computation) -> Schedule:
    """Everything on processor 0, in the dag's fixed topological order."""
    order = comp.dag.topological_order
    start = [0] * comp.num_nodes
    for t, u in enumerate(order):
        start[u] = t
    return Schedule(comp, (0,) * comp.num_nodes, tuple(start), 1)


def greedy_schedule(
    comp: Computation, num_procs: int, rng: random.Random | int | None = None
) -> Schedule:
    """Graham list scheduling with a FIFO global ready queue.

    ``rng`` only breaks ties among simultaneously-enabled nodes (enabled
    nodes are shuffled before queueing) so different seeds explore
    different legal schedules.
    """
    if num_procs < 1:
        raise ScheduleError("need at least one processor")
    r = as_rng(rng)
    n = comp.num_nodes
    indeg = [comp.dag.in_degree(u) for u in range(n)]
    ready = deque(sorted(u for u in range(n) if indeg[u] == 0))
    proc_of = [0] * n
    start_of = [0] * n
    done = 0
    t = 0
    while done < n:
        running: list[int] = []
        for p in range(num_procs):
            if not ready:
                break
            u = ready.popleft()
            proc_of[u] = p
            start_of[u] = t
            running.append(u)
        if not running:
            raise ScheduleError("deadlock: no ready nodes (cycle?)")
        newly: list[int] = []
        for u in running:
            done += 1
            for v in comp.dag.successors(u):
                indeg[v] -= 1
                if indeg[v] == 0:
                    newly.append(v)
        r.shuffle(newly)
        ready.extend(newly)
        t += 1
    return Schedule(comp, tuple(proc_of), tuple(start_of), num_procs)


def work_stealing_schedule(
    comp: Computation, num_procs: int, rng: random.Random | int | None = None
) -> Schedule:
    """Randomized work stealing in the style of the Cilk runtime.

    Per-processor deques; owners pop newest work (depth-first), idle
    processors steal oldest work (breadth-first) from a uniformly random
    non-empty victim.  Source nodes start on processor 0, modelling a
    root thread that others steal from.
    """
    if num_procs < 1:
        raise ScheduleError("need at least one processor")
    r = as_rng(rng)
    n = comp.num_nodes
    indeg = [comp.dag.in_degree(u) for u in range(n)]
    deques: list[deque[int]] = [deque() for _ in range(num_procs)]
    for u in sorted(range(n)):
        if indeg[u] == 0:
            deques[0].append(u)
    proc_of = [0] * n
    start_of = [0] * n
    done = 0
    t = 0
    while done < n:
        # Each processor picks at most one node this step.
        running: list[tuple[int, int]] = []  # (proc, node)
        claimed: list[int] = []
        for p in range(num_procs):
            u: int | None = None
            if deques[p]:
                u = deques[p].pop()  # own work: newest first
            else:
                victims = [q for q in range(num_procs) if q != p and deques[q]]
                if victims:
                    q = r.choice(victims)
                    u = deques[q].popleft()  # steal: oldest first
            if u is not None:
                proc_of[u] = p
                start_of[u] = t
                running.append((p, u))
                claimed.append(u)
        if not running:
            raise ScheduleError("deadlock: no ready nodes (cycle?)")
        for p, u in running:
            done += 1
            enabled: list[int] = []
            for v in comp.dag.successors(u):
                indeg[v] -= 1
                if indeg[v] == 0:
                    enabled.append(v)
            r.shuffle(enabled)
            deques[p].extend(enabled)
        t += 1
    return Schedule(comp, tuple(proc_of), tuple(start_of), num_procs)
