"""The memory-system interface driven by the executor.

A memory system answers reads and accepts writes from simulated
processors, and receives coherence hooks when execution crosses
processor boundaries.  **Values are writer node ids**: a write by node
``u`` stores the value ``u``, so every read directly names the write it
observed — the executor's trace is therefore a partial observer function
by construction, with no value-ambiguity (two writes never store the
same value).

Hooks
-----
``node_starting(proc, node, cross_pred)`` fires before a node executes;
``cross_pred`` is true when some direct dag predecessor ran on a
different processor.  ``node_completed(proc, node, cross_succ)`` fires
after; ``cross_succ`` is true when some direct successor is scheduled
elsewhere.  These are exactly the points where the BACKER protocol
reconciles and flushes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.ops import Location

__all__ = ["MemorySystem", "SerialMemory"]


class MemorySystem(ABC):
    """Abstract simulated memory."""

    name: str = "memory"

    @abstractmethod
    def attach(self, num_procs: int) -> None:
        """Reset state for an execution on ``num_procs`` processors."""

    @abstractmethod
    def read(self, proc: int, node: int, loc: Location) -> int | None:
        """Return the writer node id observed at ``loc`` (``None`` = ⊥)."""

    @abstractmethod
    def write(self, proc: int, node: int, loc: Location) -> None:
        """Perform node's write to ``loc`` (the stored value is ``node``)."""

    def node_starting(self, proc: int, node: int, cross_pred: bool) -> None:
        """Coherence hook before a node executes (default: no-op)."""

    def node_completed(self, proc: int, node: int, cross_succ: bool) -> None:
        """Coherence hook after a node executes (default: no-op)."""


class SerialMemory(MemorySystem):
    """One globally serialized store: the strongest (SC) memory.

    Every operation hits a single shared map in execution order, so each
    read observes the globally most recent write — the execution order
    itself is the witnessing topological sort, making every trace
    sequentially consistent by construction (the test suite checks this
    via the SC trace verifier).
    """

    name = "serial"

    def __init__(self) -> None:
        self._main: dict[Location, int] = {}

    def attach(self, num_procs: int) -> None:
        self._main = {}

    def read(self, proc: int, node: int, loc: Location) -> int | None:
        return self._main.get(loc)

    def write(self, proc: int, node: int, loc: Location) -> None:
        self._main[loc] = node
