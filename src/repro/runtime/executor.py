"""The discrete-event executor: (computation, schedule, memory) → trace.

Nodes run in global time order (same-step nodes serialized by processor
id — legal because unit-time nodes sharing a step are dag-incomparable,
which :class:`~repro.runtime.scheduler.Schedule` validation guarantees).
Around each node the executor fires the coherence hooks that the BACKER
protocol consumes:

* before a node with a cross-processor predecessor: ``node_starting``
  with ``cross_pred=True`` (BACKER: flush the consumer's cache);
* after a node with a cross-processor successor: ``node_completed`` with
  ``cross_succ=True`` (BACKER: reconcile the producer's cache).

The trace records, for every read, the writer node id the memory
returned — see :mod:`repro.runtime.trace`.  Passing a *sanitizer*
(:class:`repro.verify.sanitizer.TraceSanitizer`) checks each event
against the model's invariants as it happens; the first violation is
recorded on the trace and, when the sanitizer halts, stops the run at
the violating event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.computation import Computation
from repro.runtime.memory_base import MemorySystem
from repro.runtime.scheduler import Schedule
from repro.runtime.trace import ExecutionTrace, ReadEvent

if TYPE_CHECKING:  # verify imports runtime; keep the cycle static-only
    from repro.verify.sanitizer import TraceSanitizer

__all__ = ["execute"]


def execute(
    schedule: Schedule,
    memory: MemorySystem,
    sanitizer: "TraceSanitizer | None" = None,
) -> ExecutionTrace:
    """Run a schedule against a memory system and collect the trace."""
    comp: Computation = schedule.comp
    memory.attach(schedule.num_procs)
    trace = ExecutionTrace(comp, schedule, memory.name)
    proc_of = schedule.proc_of

    cross_pred = [
        any(proc_of[u] != proc_of[v] for u in comp.dag.predecessors(v))
        for v in comp.nodes()
    ]
    cross_succ = [
        any(proc_of[u] != proc_of[v] for v in comp.dag.successors(u))
        for u in comp.nodes()
    ]

    for u in schedule.execution_order():
        p = proc_of[u]
        memory.node_starting(p, u, cross_pred[u])
        op = comp.op(u)
        observed: int | None = None
        if op.is_read:
            observed = memory.read(p, u, op.loc)
            trace.reads.append(ReadEvent(u, op.loc, observed))
        elif op.is_write:
            memory.write(p, u, op.loc)
        memory.node_completed(p, u, cross_succ[u])
        if sanitizer is not None:
            violation = sanitizer.on_node(
                u, op, comp.dag.predecessors(u), observed
            )
            if violation is not None:
                trace.violation = violation
                if sanitizer.halt:
                    break
    return trace
