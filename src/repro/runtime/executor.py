"""The discrete-event executor: (computation, schedule, memory) → trace.

Nodes run in global time order (same-step nodes serialized by processor
id — legal because unit-time nodes sharing a step are dag-incomparable,
which :class:`~repro.runtime.scheduler.Schedule` validation guarantees).
Around each node the executor fires the coherence hooks that the BACKER
protocol consumes:

* before a node with a cross-processor predecessor: ``node_starting``
  with ``cross_pred=True`` (BACKER: flush the consumer's cache);
* after a node with a cross-processor successor: ``node_completed`` with
  ``cross_succ=True`` (BACKER: reconcile the producer's cache).

The trace records, for every read, the writer node id the memory
returned — see :mod:`repro.runtime.trace`.  Passing a *sanitizer*
(:class:`repro.verify.sanitizer.TraceSanitizer`) checks each event
against the model's invariants as it happens; the first violation is
recorded on the trace and, when the sanitizer halts, stops the run at
the violating event.

Observability: the whole run is an ``execute`` span (a memory span when
``--mem`` is on, attributing tracemalloc peak/net to the run); with the
tracer enabled each node additionally gets a ``step`` child span (up to
:data:`STEP_SPAN_LIMIT` nodes, to bound trace size), every global
time-step's wall time feeds the ``executor.step_seconds`` histogram,
and the executor maintains ``executor.*`` counters (nodes, reads,
writes) plus the memory's coherence-message counters (``backer.*``,
emitted by :class:`repro.runtime.backer.BackerMemory` itself).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro import obs
from repro.core.computation import Computation
from repro.runtime.memory_base import MemorySystem
from repro.runtime.scheduler import Schedule
from repro.runtime.trace import ExecutionTrace, ReadEvent

if TYPE_CHECKING:  # verify imports runtime; keep the cycle static-only
    from repro.verify.sanitizer import TraceSanitizer

__all__ = ["execute", "STEP_SPAN_LIMIT"]

STEP_SPAN_LIMIT = 512
"""Per-node ``step`` spans are emitted only for computations up to this
many nodes; larger runs keep the ``execute`` span and counters so traces
stay proportionate."""


def execute(
    schedule: Schedule,
    memory: MemorySystem,
    sanitizer: "TraceSanitizer | None" = None,
) -> ExecutionTrace:
    """Run a schedule against a memory system and collect the trace."""
    comp: Computation = schedule.comp
    with obs.mem_span(
        "execute",
        nodes=comp.num_nodes,
        procs=schedule.num_procs,
        memory=memory.name,
        sanitized=sanitizer is not None,
    ) as sp:
        trace = _execute_body(schedule, memory, sanitizer, comp)
        if sp is not None:
            sp.attrs["reads"] = len(trace.reads)
            sp.attrs["violation"] = trace.violation is not None
        # Memories that batch their telemetry (the hierarchy keeps
        # plain-int counters in the hot loop) flush it here, inside the
        # execute span so attached track spans nest under the run.
        publish = getattr(memory, "publish_obs", None)
        if publish is not None and obs.enabled():
            publish()
    return trace


def _execute_body(
    schedule: Schedule,
    memory: MemorySystem,
    sanitizer: "TraceSanitizer | None",
    comp: Computation,
) -> ExecutionTrace:
    memory.attach(schedule.num_procs)
    trace = ExecutionTrace(comp, schedule, memory.name)
    proc_of = schedule.proc_of

    cross_pred = [
        any(proc_of[u] != proc_of[v] for u in comp.dag.predecessors(v))
        for v in comp.nodes()
    ]
    cross_succ = [
        any(proc_of[u] != proc_of[v] for v in comp.dag.successors(u))
        for u in comp.nodes()
    ]
    tracing = obs.enabled()
    step_spans = tracing and comp.num_nodes <= STEP_SPAN_LIMIT

    # Step-batch timing: nodes sharing a start step form one global
    # time-step; each batch's wall time is one ``executor.step_seconds``
    # sample.  Execution order is sorted by start step, so batches are
    # contiguous and a boundary check per node suffices.
    start_of = schedule.start_of
    batch_step = -1
    batch_t0 = 0.0

    reads = writes = executed = 0
    for u in schedule.execution_order():
        if tracing and start_of[u] != batch_step:
            now = time.perf_counter()
            if batch_step >= 0:
                obs.observe("executor.step_seconds", now - batch_t0)
            # Live progress for journal/metrics scrapers: how deep into
            # the schedule this execution currently is.
            obs.set_gauge("executor.nodes_done", executed)
            batch_step, batch_t0 = start_of[u], now
        executed += 1
        p = proc_of[u]
        op = comp.op(u)
        step = (
            obs.span("step", node=u, op=repr(op), proc=p)
            if step_spans
            else obs.NULL_SPAN
        )
        with step:
            memory.node_starting(p, u, cross_pred[u])
            observed: int | None = None
            if op.is_read:
                observed = memory.read(p, u, op.loc)
                trace.reads.append(ReadEvent(u, op.loc, observed))
                reads += 1
            elif op.is_write:
                memory.write(p, u, op.loc)
                writes += 1
            memory.node_completed(p, u, cross_succ[u])
        if sanitizer is not None:
            violation = sanitizer.on_node(
                u, op, comp.dag.predecessors(u), observed
            )
            if violation is not None:
                trace.violation = violation
                if sanitizer.halt:
                    break
    if tracing:
        if batch_step >= 0:
            obs.observe("executor.step_seconds", time.perf_counter() - batch_t0)
        obs.add("executor.runs")
        obs.add("executor.nodes", executed)
        obs.add("executor.reads", reads)
        obs.add("executor.writes", writes)
    return trace
