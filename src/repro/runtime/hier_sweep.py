"""The hierarchy traffic study: shape × latency × workload sweeps.

Backs the ``repro hier sweep`` CLI and the ``hier-sweep`` ledger
benchmark.  Each grid cell executes one bundled workload under a
:class:`~repro.runtime.hierarchy.HierarchicalBackerMemory` of a given
shape on a work-stealing schedule, then **post-mortem verifies the
trace with the streaming LC checker** — the paper's thesis applied to
its own simulation: the protocol's correctness is not assumed, it is
checked after every run.  Alongside the faithful grid the sweep runs
deterministic *fault probes*: a producer/consumer scenario where a
dropped reconcile or flush at each individual level provably loses a
masked write, so the checker must reject it with a witness.  A sweep
"passes" only when every faithful run verifies and every fault probe
is rejected.

Run records are plain dicts (one JSONL line each in the CLI) carrying
per-level traffic counters, miss-latency percentiles, false-sharing
attribution, and the verification verdict — the raw material of the
EXPERIMENTS.md "coherence traffic vs. hierarchy shape" study.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.core import Computation, R, W
from repro.dag import Dag
from repro.runtime.executor import execute
from repro.runtime.hierarchy import (
    HIERARCHY_PRESETS,
    HierarchicalBackerMemory,
    HierarchyConfig,
)
from repro.runtime.scheduler import Schedule, work_stealing_schedule
from repro.verify.streaming import StreamingLCVerifier

__all__ = [
    "SWEEP_WORKLOADS",
    "HierSweepResult",
    "fault_probe",
    "hier_sweep",
    "render_sweep_table",
    "sweep_workload",
]


# Full-mode sizes are calibrated so the default grid simulates millions
# of memory-system events while post-mortem verification stays tolerable:
# the LC checker is near-quadratic on the stencil's dense dag (so that
# workload stays moderate) and near-linear on the others (so they carry
# the op volume).


def _stencil(quick: bool):
    from repro.lang.programs import stencil_computation

    return stencil_computation(6, 3) if quick else stencil_computation(24, 24)


def _racy(quick: bool):
    from repro.lang.programs import racy_counter_computation

    return (
        racy_counter_computation(4, 2)
        if quick
        else racy_counter_computation(128, 96)
    )


def _fib(quick: bool):
    from repro.lang.programs import fib_computation

    return fib_computation(7) if quick else fib_computation(20)


def _tree_sum(quick: bool):
    from repro.lang.programs import tree_sum_computation

    return tree_sum_computation(8) if quick else tree_sum_computation(16384)


SWEEP_WORKLOADS = {
    "stencil": _stencil,  # neighbour sharing: the false-sharing magnet
    "racy": _racy,  # one hot location: true sharing, migratory lines
    "fib": _fib,  # fork/join memoization: producer/consumer traffic
    "tree-sum": _tree_sum,  # reduction: all-to-root communication
}


def sweep_workload(name: str, quick: bool) -> Computation:
    """Unfold a sweep workload by name (sized for quick or full mode)."""
    try:
        factory = SWEEP_WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown sweep workload {name!r} "
            f"(choose from {', '.join(sorted(SWEEP_WORKLOADS))})"
        ) from None
    comp, _info = factory(quick)
    return comp


def resolve_shape(spec: str) -> HierarchyConfig:
    """A preset name, or ``@file.json`` holding a config document."""
    if spec.startswith("@"):
        import json

        with open(spec[1:]) as f:
            return HierarchyConfig.from_dict(json.load(f))
    return HierarchyConfig.preset(spec)


def _simulated_ops(mem: HierarchicalBackerMemory, reads: int, writes: int) -> int:
    """Total memory-system events the run simulated.

    Counts every probe outcome and transfer the hierarchy performed —
    per-level fetches, hits, writebacks and evictions, plus store
    fetches and the executor's read/write operations themselves.
    """
    st = mem.stats
    ops = reads + writes + st.memory_fetches
    for ls in st.levels:
        ops += ls.fetches + ls.hits + ls.writebacks + ls.evictions
    return ops


def _run_record(
    shape: HierarchyConfig,
    workload: str,
    procs: int,
    seed: int,
    schedule: Schedule,
    mem: HierarchicalBackerMemory,
    faithful: bool,
) -> dict:
    comp = schedule.comp
    t0 = time.perf_counter()
    trace = execute(schedule, mem)
    violation = StreamingLCVerifier.check_trace(trace)
    wall = time.perf_counter() - t0
    st = mem.stats
    reads = len(trace.reads)
    writes = sum(1 for u in comp.nodes() if comp.op(u).is_write)
    return {
        "shape": shape.name,
        "workload": workload,
        "procs": procs,
        "seed": seed,
        "faithful": faithful,
        "nodes": comp.num_nodes,
        "reads": reads,
        "writes": writes,
        "simulated_ops": _simulated_ops(mem, reads, writes),
        "lc_verified": violation is None,
        "violation": None if violation is None else violation.reason,
        "levels": [
            {
                "level": k + 1,
                "fetches": ls.fetches,
                "hits": ls.hits,
                "writebacks": ls.writebacks,
                "evictions": ls.evictions,
                "false_sharing": ls.false_sharing,
                "miss_latency_p50": ls.miss_latency.p50,
                "miss_latency_p90": ls.miss_latency.p90,
                "miss_count": ls.miss_latency.count,
            }
            for k, ls in enumerate(st.levels)
        ],
        "memory_fetches": st.memory_fetches,
        "reconciles": st.reconciles,
        "flushes": st.flushes,
        "dropped_reconciles": st.dropped_reconciles,
        "dropped_flushes": st.dropped_flushes,
        "false_sharing": st.false_sharing_total,
        "data_messages": st.data_messages,
        "control_messages": st.control_messages,
        "messages": st.messages,
        "wall_seconds": round(wall, 6),
    }


def _fault_comp() -> tuple[Computation, Schedule]:
    """The deterministic masked-write scenario (see :func:`fault_probe`)."""
    comp = Computation(Dag(3, [(0, 2), (1, 2)]), (R("x"), W("x"), R("x")))
    # p1 caches ⊥ at step 0; p0 writes and reconciles at step 1; p1's
    # read at step 2 crosses a processor edge, so a faithful flush must
    # evict the stale ⊥ — observing it is a masked-write LC violation.
    return comp, Schedule(comp, (1, 0, 1), (0, 1, 2), 2)


def fault_probe(shape: HierarchyConfig, level: int, mode: str) -> dict:
    """Run the deterministic fault scenario at one level of ``shape``.

    ``mode`` is ``"reconcile"`` or ``"flush"``; the returned record's
    ``lc_verified`` must read ``False`` (the streaming checker catches
    the lost write with a witness) for the sweep to pass.
    """
    comp, schedule = _fault_comp()
    kwargs = {
        "reconcile": {"drop_reconcile_probability": 1.0},
        "flush": {"drop_flush_probability": 1.0},
    }[mode]
    mem = HierarchicalBackerMemory(shape, fault_level=level, rng=0, **kwargs)
    record = _run_record(
        shape, f"fault-{mode}-L{level}", 2, 0, schedule, mem, faithful=False
    )
    return record


@dataclass
class HierSweepResult:
    """Everything one sweep produced, plus the pass/fail verdict."""

    records: list[dict] = field(default_factory=list)
    faithful_runs: int = 0
    faithful_verified: int = 0
    fault_probes: int = 0
    fault_rejected: int = 0
    simulated_ops: int = 0
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return (
            self.faithful_verified == self.faithful_runs
            and self.fault_rejected == self.fault_probes
        )


def hier_sweep(
    shapes: Iterable[HierarchyConfig],
    workloads: Iterable[str],
    procs_list: Iterable[int],
    seeds: Iterable[int] = (0,),
    quick: bool = False,
    fault_probes: bool = True,
    progress=None,
) -> HierSweepResult:
    """Drive the full grid; every cell is executed and LC-verified.

    ``progress`` (optional callable) receives each record as it lands —
    the CLI streams them to the runs JSONL.
    """
    shapes = list(shapes)
    workloads = list(workloads)
    procs_list = list(procs_list)
    seeds = list(seeds)
    result = HierSweepResult()
    t0 = time.perf_counter()
    comps = {w: sweep_workload(w, quick) for w in workloads}
    for workload in workloads:
        comp = comps[workload]
        for procs in procs_list:
            for seed in seeds:
                schedule = work_stealing_schedule(comp, procs, rng=seed)
                for shape in shapes:
                    mem = HierarchicalBackerMemory(shape)
                    record = _run_record(
                        shape, workload, procs, seed, schedule, mem, True
                    )
                    result.records.append(record)
                    result.faithful_runs += 1
                    result.faithful_verified += record["lc_verified"]
                    result.simulated_ops += record["simulated_ops"]
                    if progress is not None:
                        progress(record)
    if fault_probes:
        for shape in shapes:
            for level in range(1, shape.depth + 1):
                for mode in ("reconcile", "flush"):
                    record = fault_probe(shape, level, mode)
                    result.records.append(record)
                    result.fault_probes += 1
                    result.fault_rejected += not record["lc_verified"]
                    result.simulated_ops += record["simulated_ops"]
                    if progress is not None:
                        progress(record)
    result.wall_seconds = time.perf_counter() - t0
    return result


def render_sweep_table(result: HierSweepResult) -> str:
    """The study's traffic table, aggregated per (workload, shape)."""
    groups: dict[tuple[str, str], list[dict]] = {}
    for rec in result.records:
        if rec["faithful"]:
            groups.setdefault((rec["workload"], rec["shape"]), []).append(rec)
    lines = [
        f"{'workload':<10} {'shape':<8} {'procs':>5} {'ops':>9} "
        f"{'store-fetch':>11} {'writebacks':>10} {'false-share':>11} "
        f"{'msgs':>8} {'L1 p50':>7} {'verified':>8}"
    ]
    for (workload, shape), recs in sorted(groups.items()):
        n = len(recs)
        procs = ",".join(sorted({str(r["procs"]) for r in recs}, key=int))
        ops = sum(r["simulated_ops"] for r in recs)
        fetches = sum(r["memory_fetches"] for r in recs) // n
        wb = sum(r["levels"][-1]["writebacks"] for r in recs) // n
        fs = sum(r["false_sharing"] for r in recs) // n
        msgs = sum(r["messages"] for r in recs) // n
        p50 = sum(r["levels"][0]["miss_latency_p50"] for r in recs) / n
        verified = all(r["lc_verified"] for r in recs)
        lines.append(
            f"{workload:<10} {shape:<8} {procs:>5} {ops:>9} "
            f"{fetches:>11} {wb:>10} {fs:>11} {msgs:>8} {p50:>7.1f} "
            f"{'yes' if verified else 'NO':>8}"
        )
    lines.append(
        f"faithful {result.faithful_verified}/{result.faithful_runs} "
        f"LC-verified; fault probes {result.fault_rejected}/"
        f"{result.fault_probes} rejected; "
        f"{result.simulated_ops} simulated ops in "
        f"{result.wall_seconds:.2f}s"
    )
    return "\n".join(lines)
