"""An eager directory-based (MSI) coherence protocol.

Section 7 of the paper asks whether algorithms cheaper than BACKER can
implement models weaker than LC.  The flip side — what does it cost to
maintain a *stronger* model? — is answered by classical eagerly-coherent
protocols: write-invalidate directory schemes keep every cached copy
consistent at all times, paying coherence traffic on *every* conflicting
access instead of only at dag edges.

:class:`DirectoryMemory` simulates a textbook MSI protocol:

* a directory per location tracks the set of sharers and the exclusive
  owner (if any);
* a **read** miss fetches the line (forcing a writeback if some other
  processor holds it modified) and joins the sharers;
* a **write** gains exclusive ownership, invalidating every other copy
  (one invalidation message per copy).

Because each access observes the globally latest write the executor has
performed, every trace is sequentially consistent — the strongest model
in the zoo — and the protocol-comparison benchmark quantifies what that
strength costs relative to BACKER's lazy, LC-only discipline: the
coherence-message counts are the *shape* the dag-consistency line of
work [BFJ+96a/b] used to argue for weaker models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.ops import Location
from repro.runtime.memory_base import MemorySystem

__all__ = ["DirectoryMemory", "DirectoryStats"]


@dataclass
class DirectoryStats:
    """Protocol message counters for one execution."""

    fetches: int = 0
    invalidations: int = 0
    writebacks: int = 0
    cache_hits: int = 0

    @property
    def data_messages(self) -> int:
        """Messages that carry a data line (fetches and writebacks)."""
        return self.fetches + self.writebacks

    @property
    def control_messages(self) -> int:
        """Data-free protocol messages (invalidations)."""
        return self.invalidations

    @property
    def messages(self) -> int:
        """Total coherence messages (everything except local hits)."""
        return self.data_messages + self.control_messages


class DirectoryMemory(MemorySystem):
    """Write-invalidate MSI directory protocol (maintains SC)."""

    name = "directory"

    #: MSI states for cached lines.
    _SHARED = "S"
    _MODIFIED = "M"

    def __init__(self) -> None:
        self._main: dict[Location, int] = {}
        self._caches: list[dict[Location, tuple[int | None, str]]] = []
        self._sharers: dict[Location, set[int]] = {}
        self._owner: dict[Location, int | None] = {}
        self.stats = DirectoryStats()

    def attach(self, num_procs: int) -> None:
        self._main = {}
        self._caches = [dict() for _ in range(num_procs)]
        self._sharers = {}
        self._owner = {}
        self.stats = DirectoryStats()

    # ------------------------------------------------------------------
    # Protocol actions
    # ------------------------------------------------------------------

    def _writeback_owner(self, loc: Location) -> None:
        """Downgrade the exclusive owner (if any) to shared, flushing its
        value to the backing store."""
        owner = self._owner.get(loc)
        if owner is None:
            return
        value, state = self._caches[owner][loc]
        assert state == self._MODIFIED
        assert value is not None, "modified lines always hold a write"
        self._main[loc] = value
        self._caches[owner][loc] = (value, self._SHARED)
        self._owner[loc] = None
        self.stats.writebacks += 1
        if obs.enabled():
            obs.add("directory.writebacks")

    # ------------------------------------------------------------------
    # MemorySystem interface
    # ------------------------------------------------------------------

    def read(self, proc: int, node: int, loc: Location) -> int | None:
        cache = self._caches[proc]
        if loc in cache:
            self.stats.cache_hits += 1
            if obs.enabled():
                obs.add("directory.cache_hits")
            return cache[loc][0]
        # Miss: if somebody holds it modified, they write back first.
        self._writeback_owner(loc)
        value = self._main.get(loc)
        cache[loc] = (value, self._SHARED)
        self._sharers.setdefault(loc, set()).add(proc)
        self.stats.fetches += 1
        if obs.enabled():
            obs.add("directory.fetches")
        return value

    def write(self, proc: int, node: int, loc: Location) -> None:
        # Gain exclusivity: write back a foreign owner, invalidate sharers.
        if self._owner.get(loc) not in (None, proc):
            self._writeback_owner(loc)
        invalidated = 0
        for p in list(self._sharers.get(loc, ())):
            if p != proc:
                self._caches[p].pop(loc, None)
                self._sharers[loc].discard(p)
                invalidated += 1
        self.stats.invalidations += invalidated
        if invalidated and obs.enabled():
            obs.add("directory.invalidations", invalidated)
        self._caches[proc][loc] = (node, self._MODIFIED)
        self._sharers.setdefault(loc, set()).add(proc)
        self._owner[loc] = proc
