"""The BACKER coherence algorithm (Blumofe et al. 1996; Luchangco 1997).

BACKER is the algorithm the Cilk system used to maintain dag consistency
on distributed caches, and the concrete motivation of the paper: the
companion result [Luc97] cited in Section 7 proves BACKER actually
maintains *location consistency*, which Theorem 23 then identifies as
NN*.  Our simulation reproduces the protocol's three primitives over a
backing store and per-processor caches:

* **fetch** — copy a location from the backing store into a cache
  (performed implicitly on a cache miss);
* **reconcile** — write a dirty cached value back to the backing store,
  marking it clean;
* **flush** — reconcile then evict the whole cache.

Protocol discipline (the Cilk steal/sync rule, expressed on dag edges):
when an edge ``(u, v)`` crosses processors, ``u``'s processor reconciles
its cache when ``u`` completes, and ``v``'s processor flushes its cache
before ``v`` starts.  The executor reports exactly these events via the
``node_completed`` / ``node_starting`` hooks.

:class:`BackerMemory` also supports *fault injection* — independently
dropping reconcile or flush events with given probabilities — to produce
protocol-violating executions whose traces the post-mortem verifier
(:mod:`repro.verify`) then correctly rejects.  This closes the loop on
the paper's motivating use case: checking whether a memory implements a
model by checking its behaviour after execution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import obs
from repro.core.ops import Location
from repro.dag.random_dags import as_rng
from repro.runtime.memory_base import MemorySystem

__all__ = ["BackerMemory", "BackerStats"]


@dataclass
class BackerStats:
    """Protocol event counters for one execution.

    ``reconciles``/``flushes`` count protocol *events* (one per hook);
    ``writebacks`` counts the dirty *lines* actually transferred to the
    backing store, which together with ``fetches`` gives the
    communication volume comparable across protocols.
    """

    fetches: int = 0
    reconciles: int = 0
    flushes: int = 0
    writebacks: int = 0
    cache_hits: int = 0
    dropped_reconciles: int = 0
    dropped_flushes: int = 0

    @property
    def data_messages(self) -> int:
        """Lines moved between caches and the backing store."""
        return self.fetches + self.writebacks

    @property
    def control_messages(self) -> int:
        """Protocol events that carry no data lines themselves.

        Each reconcile/flush costs at least one round-trip of
        bookkeeping with the backing store even when no line is dirty;
        historically ``messages`` silently omitted these, under-counting
        BACKER's communication in the protocol-comparison tables.
        """
        return self.reconciles + self.flushes

    @property
    def messages(self) -> int:
        """Total protocol communication: data lines plus control events."""
        return self.data_messages + self.control_messages


class BackerMemory(MemorySystem):
    """Per-processor caches over a backing store, with the BACKER protocol.

    Parameters
    ----------
    drop_reconcile_probability / drop_flush_probability:
        Fault-injection rates in ``[0, 1]``; ``0`` (default) is the
        faithful protocol (which provably maintains LC), anything higher
        yields executions that may violate LC.
    spontaneous_reconcile_probability:
        Probability of an *extra* reconcile of a processor's cache after
        any node it executes.  Real BACKER may reconcile at any time
        (e.g. on capacity evictions); extra reconciles never endanger LC
        but make weak behaviours such as IRIW reader disagreement
        reachable in simulation.
    rng:
        Seed or ``random.Random`` for fault injection decisions.
    """

    name = "backer"

    def __init__(
        self,
        drop_reconcile_probability: float = 0.0,
        drop_flush_probability: float = 0.0,
        spontaneous_reconcile_probability: float = 0.0,
        rng: random.Random | int | None = None,
    ) -> None:
        if not (0.0 <= drop_reconcile_probability <= 1.0):
            raise ValueError("drop_reconcile_probability must be in [0, 1]")
        if not (0.0 <= drop_flush_probability <= 1.0):
            raise ValueError("drop_flush_probability must be in [0, 1]")
        if not (0.0 <= spontaneous_reconcile_probability <= 1.0):
            raise ValueError("spontaneous_reconcile_probability must be in [0, 1]")
        self.drop_reconcile_probability = drop_reconcile_probability
        self.drop_flush_probability = drop_flush_probability
        self.spontaneous_reconcile_probability = spontaneous_reconcile_probability
        self._rng = as_rng(rng)
        self._main: dict[Location, int] = {}
        self._caches: list[dict[Location, tuple[int | None, bool]]] = []
        self.stats = BackerStats()

    # ------------------------------------------------------------------
    # Protocol primitives
    # ------------------------------------------------------------------

    def _reconcile_all(self, proc: int) -> None:
        """Write back every dirty line of ``proc``'s cache."""
        self.stats.reconciles += 1
        cache = self._caches[proc]
        writebacks = 0
        for loc, (value, dirty) in list(cache.items()):
            if dirty:
                assert value is not None, "dirty lines always hold a write"
                self._main[loc] = value
                cache[loc] = (value, False)
                writebacks += 1
        self.stats.writebacks += writebacks
        if obs.enabled():
            obs.add("backer.reconciles")
            obs.add("backer.writebacks", writebacks)

    def _flush_all(self, proc: int) -> None:
        """Reconcile then evict ``proc``'s entire cache."""
        self._reconcile_all(proc)
        self.stats.flushes += 1
        self._caches[proc].clear()
        if obs.enabled():
            obs.add("backer.flushes")

    # ------------------------------------------------------------------
    # MemorySystem interface
    # ------------------------------------------------------------------

    def attach(self, num_procs: int) -> None:
        self._main = {}
        self._caches = [dict() for _ in range(num_procs)]
        self.stats = BackerStats()

    def read(self, proc: int, node: int, loc: Location) -> int | None:
        cache = self._caches[proc]
        if loc in cache:
            self.stats.cache_hits += 1
            if obs.enabled():
                obs.add("backer.cache_hits")
            return cache[loc][0]
        self.stats.fetches += 1
        if obs.enabled():
            obs.add("backer.fetches")
        value = self._main.get(loc)
        cache[loc] = (value, False)
        return value

    def write(self, proc: int, node: int, loc: Location) -> None:
        self._caches[proc][loc] = (node, True)

    def node_starting(self, proc: int, node: int, cross_pred: bool) -> None:
        if not cross_pred:
            return
        if self._rng.random() < self.drop_flush_probability:
            self.stats.dropped_flushes += 1
            if obs.enabled():
                obs.add("backer.dropped_flushes")
            return
        self._flush_all(proc)

    def node_completed(self, proc: int, node: int, cross_succ: bool) -> None:
        if cross_succ:
            if self._rng.random() < self.drop_reconcile_probability:
                self.stats.dropped_reconciles += 1
                if obs.enabled():
                    obs.add("backer.dropped_reconciles")
            else:
                self._reconcile_all(proc)
        elif (
            self.spontaneous_reconcile_probability > 0.0
            and self._rng.random() < self.spontaneous_reconcile_probability
        ):
            self._reconcile_all(proc)
