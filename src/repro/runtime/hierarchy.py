"""Multi-level BACKER: per-processor cache hierarchies over one store.

The paper's §7 protocol (and :mod:`repro.runtime.backer`) models a
single flat cache per processor.  Real machines — and the Cilk/BACKER
deployments of [BFJ+96a/b] — interpose a *hierarchy*: small fast levels
backed by larger slower ones, each moving data in lines.  SNIPPETS'
"models of memory hierarchy" frames the parameter space this module
makes concrete: per-level capacity (in lines), line size (locations per
line) and service latency, composed into one
:class:`~repro.runtime.memory_base.MemorySystem`.

Protocol
--------
Each processor owns a private stack of levels ``L1..LK`` over the shared
backing store.  The BACKER discipline generalizes level-wise:

* **fetch** — a read probes ``L1 → … → LK → store`` and fills every
  missed level with the containing line (only locations not already
  cached are filled, so dirty data is never overwritten);
* **reconcile** — dirty locations are pushed down level by level into
  the backing store (location-granular dirty sets: no clobbering, so
  arbitrary line sizes stay safe — the diff discipline of
  :mod:`repro.runtime.paged_backer` without materialized twins);
* **flush** — reconcile, then evict every level of the stack;
* **capacity eviction** — inserting into a full level evicts the LRU
  line, pushing its dirty locations down one level (possibly cascading).
  Real BACKER permits such spontaneous partial reconciles at any time.

Hooks are the usual dag-edge rule: ``node_completed`` with a
cross-processor successor reconciles, ``node_starting`` with a
cross-processor predecessor flushes.  The faithful protocol maintains
location consistency ([Luc97], Theorem 23's NN*) — every simulated run
in the test-suite and the ``repro hier sweep`` study is post-mortem
checked by the streaming LC verifier.

Telemetry
---------
Per level ``k`` the memory keeps fetch/hit/writeback/eviction counters
and a miss-*latency* histogram: a request that misses levels ``1..k``
and hits at level ``k+1`` (or the store) costs the sum of the probed
latencies, and that total is recorded at **every missed level** — so
deeper levels see a subset of strictly slower requests and the per-level
p50s are monotone by construction (the CI smoke asserts this).

**False sharing** is attributed fetch-side: when a line leaves a level
(eviction or flush) its values are shadowed; a later miss on location
``x`` whose refetched value is *unchanged* while some other location
``y`` on the same line *did* change means the line's traffic was caused
by ``y``, not ``x`` — counted per level and attributed to the offending
``(x, y)`` pair.  With ``line_size=1`` no ``y`` exists and the count is
structurally zero.

:meth:`HierarchicalBackerMemory.publish_obs` flushes the plain-int
counters into :mod:`repro.obs` (``hier.L<k>.*``), merges the latency
histograms, and attaches one hand-built span track per
``(processor, level)`` — rendered by the Chrome exporter as separate
Perfetto tracks next to the request-flow arrows.

Fault injection drops reconcile or flush writebacks at a chosen level
(dirty data marked clean but never propagated), producing executions the
post-mortem verifier must reject — the paper's motivating use case.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field

from repro import obs
from repro.core.ops import Location
from repro.dag.random_dags import as_rng
from repro.obs.core import Histogram, Span
from repro.runtime.memory_base import MemorySystem

__all__ = [
    "LevelConfig",
    "HierarchyConfig",
    "LevelStats",
    "HierarchyStats",
    "HierarchicalBackerMemory",
    "HIERARCHY_PRESETS",
]

TRACK_EVENT_LIMIT = 128
"""Per-(processor, level) cap on protocol events kept for the Chrome
span tracks; counters always see everything."""


@dataclass(frozen=True)
class LevelConfig:
    """Shape of one cache level.

    ``capacity`` is in *lines* (``None`` = unbounded, like the flat
    BACKER cache); ``line_size`` in locations per line; ``latency`` is
    the level's probe/service time in abstract cycles.
    """

    capacity: int | None = None
    line_size: int = 1
    latency: int = 1

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 1:
            raise ValueError("capacity must be None or >= 1 lines")
        if self.line_size < 1:
            raise ValueError("line_size must be >= 1 locations")
        if self.latency < 1:
            raise ValueError("latency must be >= 1 cycle")

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "line_size": self.line_size,
            "latency": self.latency,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "LevelConfig":
        unknown = set(doc) - {"capacity", "line_size", "latency"}
        if unknown:
            raise ValueError(f"unknown level config keys: {sorted(unknown)}")
        return cls(**doc)


@dataclass(frozen=True)
class HierarchyConfig:
    """A full hierarchy shape: ordered levels plus the store latency."""

    levels: tuple[LevelConfig, ...]
    memory_latency: int = 20
    name: str = "custom"

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("a hierarchy needs at least one level")
        if self.memory_latency < 1:
            raise ValueError("memory_latency must be >= 1 cycle")
        object.__setattr__(self, "levels", tuple(self.levels))

    @property
    def depth(self) -> int:
        return len(self.levels)

    def to_dict(self) -> dict:
        """JSON form (the ``repro hier`` config schema; see README)."""
        return {
            "name": self.name,
            "memory_latency": self.memory_latency,
            "levels": [lv.to_dict() for lv in self.levels],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "HierarchyConfig":
        unknown = set(doc) - {"name", "memory_latency", "levels"}
        if unknown:
            raise ValueError(f"unknown hierarchy config keys: {sorted(unknown)}")
        levels = doc.get("levels")
        if not isinstance(levels, (list, tuple)) or not levels:
            raise ValueError("hierarchy config needs a non-empty 'levels' list")
        return cls(
            levels=tuple(LevelConfig.from_dict(lv) for lv in levels),
            memory_latency=doc.get("memory_latency", 20),
            name=doc.get("name", "custom"),
        )

    @classmethod
    def preset(cls, name: str) -> "HierarchyConfig":
        try:
            return HIERARCHY_PRESETS[name]
        except KeyError:
            raise ValueError(
                f"unknown hierarchy preset {name!r} "
                f"(choose from {', '.join(sorted(HIERARCHY_PRESETS))})"
            ) from None


HIERARCHY_PRESETS: dict[str, HierarchyConfig] = {
    # Flat, unbounded, unit lines: semantically BackerMemory (the parity
    # tests lean on this).
    "flat": HierarchyConfig(
        levels=(LevelConfig(capacity=None, line_size=1, latency=1),),
        memory_latency=20,
        name="flat",
    ),
    "l1": HierarchyConfig(
        levels=(LevelConfig(capacity=16, line_size=4, latency=1),),
        memory_latency=20,
        name="l1",
    ),
    "l1l2": HierarchyConfig(
        levels=(
            LevelConfig(capacity=8, line_size=2, latency=1),
            LevelConfig(capacity=64, line_size=8, latency=4),
        ),
        memory_latency=40,
        name="l1l2",
    ),
    "l1l2l3": HierarchyConfig(
        levels=(
            LevelConfig(capacity=8, line_size=2, latency=1),
            LevelConfig(capacity=32, line_size=4, latency=4),
            LevelConfig(capacity=256, line_size=8, latency=12),
        ),
        memory_latency=80,
        name="l1l2l3",
    ),
}


@dataclass
class LevelStats:
    """Counters for one level, aggregated over all processors."""

    fetches: int = 0
    hits: int = 0
    writebacks: int = 0
    evictions: int = 0
    false_sharing: int = 0
    miss_latency: Histogram = field(default_factory=Histogram)


@dataclass
class HierarchyStats:
    """Per-level counters plus whole-hierarchy protocol events.

    ``fetches``/``writebacks`` (properties) are the *store-level*
    traffic — lines moved between the deepest level and the backing
    store — mirroring :class:`~repro.runtime.backer.BackerStats`
    semantics so :func:`repro.runtime.timed.simulate_timed` prices
    hierarchy traffic unchanged.
    """

    levels: list[LevelStats] = field(default_factory=list)
    reconciles: int = 0
    flushes: int = 0
    dropped_reconciles: int = 0
    dropped_flushes: int = 0
    memory_fetches: int = 0
    cache_hits: int = 0
    false_sharing_pairs: dict[tuple[int, tuple], int] = field(
        default_factory=dict
    )

    @property
    def fetches(self) -> int:
        """Lines fetched from the backing store (deepest-level misses)."""
        return self.memory_fetches

    @property
    def writebacks(self) -> int:
        """Locations written back into the backing store."""
        return self.levels[-1].writebacks if self.levels else 0

    @property
    def false_sharing_total(self) -> int:
        return sum(ls.false_sharing for ls in self.levels)

    @property
    def data_messages(self) -> int:
        """Lines/locations moved across any level boundary."""
        return sum(ls.fetches + ls.writebacks for ls in self.levels)

    @property
    def control_messages(self) -> int:
        """Protocol events that carry no data themselves."""
        return self.reconciles + self.flushes

    @property
    def messages(self) -> int:
        return self.data_messages + self.control_messages

    def top_pairs(self, limit: int = 5) -> list[tuple[int, tuple, int]]:
        """The heaviest ``(level, (loc, loc'), count)`` attributions."""
        ranked = sorted(
            self.false_sharing_pairs.items(),
            key=lambda kv: (-kv[1], repr(kv[0])),
        )
        return [(lvl, pair, n) for (lvl, pair), n in ranked[:limit]]


class _Line:
    """One cached line: location values plus the dirty subset."""

    __slots__ = ("data", "dirty")

    def __init__(self) -> None:
        self.data: dict[Location, int | None] = {}
        self.dirty: set[Location] = set()


def _pair_key(a: Location, b: Location) -> tuple:
    """Order-stable key for an unordered location pair."""
    return (a, b) if repr(a) <= repr(b) else (b, a)


class HierarchicalBackerMemory(MemorySystem):
    """N-level per-processor BACKER caches over one backing store.

    Parameters
    ----------
    config:
        A :class:`HierarchyConfig`, a preset name (``"l1l2"``, …), or a
        config dict (the JSON schema of :meth:`HierarchyConfig.to_dict`).
    drop_reconcile_probability / drop_flush_probability:
        Fault-injection rates; a dropped reconcile marks dirty data
        clean without propagating it, a dropped flush evicts a level
        without writing its dirty data back.  ``fault_level`` picks the
        1-based level the faults strike (default: the first level).
    rng:
        Seed or ``random.Random`` for fault decisions.
    """

    name = "hier"

    def __init__(
        self,
        config: HierarchyConfig | str | dict | None = None,
        drop_reconcile_probability: float = 0.0,
        drop_flush_probability: float = 0.0,
        fault_level: int = 1,
        rng: random.Random | int | None = None,
    ) -> None:
        if config is None:
            config = HIERARCHY_PRESETS["l1l2"]
        elif isinstance(config, str):
            config = HierarchyConfig.preset(config)
        elif isinstance(config, dict):
            config = HierarchyConfig.from_dict(config)
        self.config = config
        if not (0.0 <= drop_reconcile_probability <= 1.0):
            raise ValueError("drop_reconcile_probability must be in [0, 1]")
        if not (0.0 <= drop_flush_probability <= 1.0):
            raise ValueError("drop_flush_probability must be in [0, 1]")
        if not (1 <= fault_level <= config.depth):
            raise ValueError(
                f"fault_level must be in [1, {config.depth}] for this shape"
            )
        self.drop_reconcile_probability = drop_reconcile_probability
        self.drop_flush_probability = drop_flush_probability
        self.fault_level = fault_level
        self._rng = as_rng(rng)
        self._main: dict[Location, int] = {}
        # Per processor, per level: line id -> _Line, LRU-ordered (MRU
        # last).  Line ids are per-level first-touch location indices
        # divided by that level's line size.
        self._stacks: list[list[OrderedDict[int, _Line]]] = []
        self._loc_index: dict[Location, int] = {}
        # Per level: line id -> locations registered on that line.
        self._line_members: list[dict[int, list[Location]]] = []
        # Per processor, per level: line id -> value snapshot at the
        # moment the line last left that level (false-sharing shadows).
        self._shadows: list[list[dict[int, dict[Location, int | None]]]] = []
        # Per (proc, level): capped protocol event list for span tracks.
        self._track_events: dict[tuple[int, int], list[tuple[int, str]]] = {}
        self._tick = 0
        self.stats = HierarchyStats()

    # ------------------------------------------------------------------
    # Line geometry
    # ------------------------------------------------------------------

    def _index(self, loc: Location) -> int:
        """First-touch location index (stable within one execution)."""
        idx = self._loc_index.get(loc)
        if idx is None:
            idx = self._loc_index[loc] = len(self._loc_index)
            for k, cfg in enumerate(self.config.levels):
                self._line_members[k].setdefault(
                    idx // cfg.line_size, []
                ).append(loc)
        return idx

    def _note(self, proc: int, level: int, kind: str) -> None:
        evs = self._track_events.setdefault((proc, level), [])
        if len(evs) < TRACK_EVENT_LIMIT:
            evs.append((self._tick, kind))

    # ------------------------------------------------------------------
    # Protocol primitives
    # ------------------------------------------------------------------

    def _probe_below(
        self, proc: int, below: int, loc: Location
    ) -> int | None:
        """The value visible at levels deeper than ``below``, else main."""
        idx = self._loc_index[loc]
        for k in range(below + 1, self.config.depth):
            line = self._stacks[proc][k].get(
                idx // self.config.levels[k].line_size
            )
            if line is not None and loc in line.data:
                return line.data[loc]
        return self._main.get(loc)

    def _insert(self, proc: int, level: int, line_id: int, line: _Line) -> None:
        """Install a line at ``level`` (MRU), evicting beyond capacity."""
        cache = self._stacks[proc][level]
        cache[line_id] = line
        cache.move_to_end(line_id)
        cap = self.config.levels[level].capacity
        while cap is not None and len(cache) > cap:
            victim_id, victim = cache.popitem(last=False)
            self._evict(proc, level, victim_id, victim)

    def _evict(
        self, proc: int, level: int, line_id: int, line: _Line
    ) -> None:
        """Push an evicted line's dirty locations down one level."""
        ls = self.stats.levels[level]
        ls.evictions += 1
        self._shadows[proc][level][line_id] = dict(line.data)
        self._note(proc, level, "evict")
        if not line.dirty:
            return
        ls.writebacks += len(line.dirty)
        self._note(proc, level, "writeback")
        if level + 1 >= self.config.depth:
            for loc in line.dirty:
                value = line.data[loc]
                assert value is not None, "dirty locations always hold a write"
                self._main[loc] = value
            return
        below_cfg = self.config.levels[level + 1]
        below = self._stacks[proc][level + 1]
        for loc in line.dirty:
            below_id = self._loc_index[loc] // below_cfg.line_size
            target = below.get(below_id)
            if target is None:
                target = _Line()
                self._insert(proc, level + 1, below_id, target)
                # _insert may itself evict; re-fetch in case the dict
                # object was displaced (it cannot be: we just inserted
                # it MRU, and eviction pops LRU — but stay defensive).
                target = below[below_id]
            else:
                below.move_to_end(below_id)
            target.data[loc] = line.data[loc]
            target.dirty.add(loc)

    def _reconcile_all(
        self,
        proc: int,
        *,
        drop_level: int | None = None,
        skip_level: int | None = None,
    ) -> None:
        """Push every dirty location down into the backing store.

        ``drop_level`` (0-based) injects a fault: the downward flow is
        severed at that level — its (and shallower levels') dirty data
        is marked clean but never reaches the store.  ``skip_level``
        models a level that ignored the command entirely: its dirty
        data stays dirty in place (used by dropped flushes).
        """
        self.stats.reconciles += 1
        outgoing: dict[Location, int | None] = {}
        for k in range(self.config.depth):
            if k == skip_level:
                continue
            cache = self._stacks[proc][k]
            for line in cache.values():
                for loc in line.dirty:
                    # A location dirty at several levels is freshest at
                    # the shallowest one (writes land in L1).
                    if loc not in outgoing:
                        outgoing[loc] = line.data[loc]
                line.dirty.clear()
            if drop_level == k:
                outgoing = {}
                continue
            if outgoing:
                self.stats.levels[k].writebacks += len(outgoing)
                self._note(proc, k, "writeback")
                if k + 1 < self.config.depth and k + 1 != skip_level:
                    # Refresh deeper copies so later refetches from the
                    # stack see the reconciled values.
                    below_cfg = self.config.levels[k + 1]
                    below = self._stacks[proc][k + 1]
                    for loc, value in outgoing.items():
                        line = below.get(
                            self._loc_index[loc] // below_cfg.line_size
                        )
                        if line is not None and loc in line.data:
                            line.data[loc] = value
                            line.dirty.discard(loc)
        for loc, value in outgoing.items():
            assert value is not None, "dirty locations always hold a write"
            self._main[loc] = value

    def _flush_all(self, proc: int, *, drop_level: int | None = None) -> None:
        """Reconcile then evict the whole stack.

        ``drop_level`` injects a fault: that level ignores the flush —
        its dirty data is neither written back nor evicted, and its
        stale lines survive the synchronization point (exactly the
        staleness BACKER's flush exists to prevent, so the post-mortem
        verifier must catch any read that observes it).
        """
        self._reconcile_all(proc, skip_level=drop_level)
        self.stats.reconciles -= 1  # folded into the flush event
        self.stats.flushes += 1
        for k in range(self.config.depth):
            if k == drop_level:
                continue
            cache = self._stacks[proc][k]
            shadows = self._shadows[proc][k]
            for line_id, line in cache.items():
                shadows[line_id] = dict(line.data)
            if cache:
                self._note(proc, k, "flush")
            cache.clear()

    # ------------------------------------------------------------------
    # MemorySystem interface
    # ------------------------------------------------------------------

    def attach(self, num_procs: int) -> None:
        depth = self.config.depth
        self._main = {}
        self._stacks = [
            [OrderedDict() for _ in range(depth)] for _ in range(num_procs)
        ]
        self._loc_index = {}
        self._line_members = [dict() for _ in range(depth)]
        self._shadows = [
            [dict() for _ in range(depth)] for _ in range(num_procs)
        ]
        self._track_events = {}
        self._tick = 0
        self.stats = HierarchyStats(
            levels=[LevelStats() for _ in range(depth)]
        )

    def read(self, proc: int, node: int, loc: Location) -> int | None:
        self._tick += 1
        idx = self._index(loc)
        stack = self._stacks[proc]
        cfgs = self.config.levels
        latency = 0
        missed: list[int] = []
        value: int | None
        hit_level: int | None = None
        for k, cfg in enumerate(cfgs):
            latency += cfg.latency
            line = stack[k].get(idx // cfg.line_size)
            if line is not None and loc in line.data:
                hit_level = k
                value = line.data[loc]
                stack[k].move_to_end(idx // cfg.line_size)
                break
            missed.append(k)
        else:
            latency += self.config.memory_latency
            value = self._main.get(loc)
            self.stats.memory_fetches += 1
        if hit_level == 0:
            self.stats.cache_hits += 1
            self.stats.levels[0].hits += 1
            return value
        if hit_level is not None:
            self.stats.levels[hit_level].hits += 1
        # Fill every missed level with the containing line, recording
        # the full service latency at each (deeper histograms therefore
        # hold strictly slower subsets: monotone p50s by construction).
        for k in reversed(missed):
            ls = self.stats.levels[k]
            ls.fetches += 1
            ls.miss_latency.record(latency)
            self._note(proc, k, "fetch")
            line_id = idx // cfgs[k].line_size
            line = stack[k].get(line_id)
            fresh = line is None
            if fresh:
                line = _Line()
            for member in self._line_members[k][line_id]:
                if member not in line.data:
                    line.data[member] = self._probe_below(proc, k, member)
            self._false_sharing_check(proc, k, line_id, loc, line)
            if fresh:
                self._insert(proc, k, line_id, line)
            else:
                stack[k].move_to_end(line_id)
        return value

    def _false_sharing_check(
        self, proc: int, level: int, line_id: int, loc: Location, line: _Line
    ) -> None:
        """Attribute a refetch caused by the line's *other* locations."""
        shadow = self._shadows[proc][level].pop(line_id, None)
        if shadow is None or loc not in shadow:
            return
        if shadow[loc] != line.data.get(loc):
            return  # the requested datum itself changed: a true miss
        for other, old in shadow.items():
            if other is not loc and other != loc and line.data.get(other) != old:
                ls = self.stats.levels[level]
                ls.false_sharing += 1
                key = (level, _pair_key(loc, other))
                pairs = self.stats.false_sharing_pairs
                pairs[key] = pairs.get(key, 0) + 1
                return

    def write(self, proc: int, node: int, loc: Location) -> None:
        self._tick += 1
        idx = self._index(loc)
        cfg = self.config.levels[0]
        line_id = idx // cfg.line_size
        cache = self._stacks[proc][0]
        line = cache.get(line_id)
        if line is None:
            # Write-allocate without a fetch (matching the flat BACKER
            # cache): the line starts partial and fills on later reads.
            line = _Line()
            line.data[loc] = node
            line.dirty.add(loc)
            self._insert(proc, 0, line_id, line)
            return
        line.data[loc] = node
        line.dirty.add(loc)
        cache.move_to_end(line_id)

    def node_starting(self, proc: int, node: int, cross_pred: bool) -> None:
        if not cross_pred:
            return
        if (
            self.drop_flush_probability > 0.0
            and self._rng.random() < self.drop_flush_probability
        ):
            self.stats.dropped_flushes += 1
            self._flush_all(proc, drop_level=self.fault_level - 1)
            return
        self._flush_all(proc)

    def node_completed(self, proc: int, node: int, cross_succ: bool) -> None:
        if not cross_succ:
            return
        if (
            self.drop_reconcile_probability > 0.0
            and self._rng.random() < self.drop_reconcile_probability
        ):
            self.stats.dropped_reconciles += 1
            self._reconcile_all(proc, drop_level=self.fault_level - 1)
            return
        self._reconcile_all(proc)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def publish_obs(self) -> None:
        """Flush accumulated telemetry into the global collector.

        Called by the executor after a run (duck-typed hook); hot-loop
        accounting stays plain-int and this pays the obs cost once.
        No-op while the collector is disabled.
        """
        if not obs.enabled():
            return
        o = obs.get()
        st = self.stats
        for k, ls in enumerate(st.levels, start=1):
            prefix = f"hier.L{k}."
            o.add(prefix + "fetches", ls.fetches)
            o.add(prefix + "hits", ls.hits)
            o.add(prefix + "writebacks", ls.writebacks)
            o.add(prefix + "evictions", ls.evictions)
            o.add(prefix + "false_sharing", ls.false_sharing)
            o.merge_histogram(prefix + "miss_latency", ls.miss_latency)
        o.add("hier.reconciles", st.reconciles)
        o.add("hier.flushes", st.flushes)
        o.add("hier.dropped_reconciles", st.dropped_reconciles)
        o.add("hier.dropped_flushes", st.dropped_flushes)
        o.add("hier.memory_fetches", st.memory_fetches)
        o.add("hier.false_sharing", st.false_sharing_total)
        obs.attach(self._track_span())

    def _track_span(self) -> Span:
        """Hand-built span tree: one Chrome track per (proc, level).

        Track children are laid out at their protocol tick (schematic
        simulated time, microseconds in the rendered trace); the ``track``
        attribute routes each to its own Perfetto process track.
        """
        root = Span("hier.tracks", attrs={"shape": self.config.name})
        for (proc, level), evs in sorted(self._track_events.items()):
            track = Span(
                f"p{proc}.L{level + 1}",
                attrs={
                    "track": f"hier p{proc} L{level + 1}",
                    "proc": proc,
                    "level": level + 1,
                    "events": len(evs),
                },
                start=0.0,
                duration=(evs[-1][0] + 1) * 1e-6 if evs else 1e-6,
            )
            for tick, kind in evs:
                track.children.append(
                    Span(kind, start=0.0, duration=1e-6, attrs={"tick": tick})
                )
            root.children.append(track)
        return root

    # ------------------------------------------------------------------
    # Introspection helpers (tests, sweep reporting)
    # ------------------------------------------------------------------

    def cached_locations(self, proc: int, level: int) -> set[Location]:
        """Locations currently cached by ``proc`` at 0-based ``level``."""
        out: set[Location] = set()
        for line in self._stacks[proc][level].values():
            out.update(line.data)
        return out
