"""Execution substrate: schedulers, memories, the BACKER protocol.

The paper separates a computation from its schedule; this subpackage
supplies the schedules (greedy and Cilk-style work stealing) and the
memory systems (a serialized SC memory and the BACKER distributed-cache
protocol, with optional fault injection), plus the discrete-event
executor tying them together into verifiable traces.

It also hosts the parallel sweep engine (:mod:`repro.runtime.parallel`)
that shards universe enumerations across a process pool for the model
checking benchmarks.
"""

from repro.runtime.backer import BackerMemory, BackerStats
from repro.runtime.parallel import (
    LatticeBatteryResult,
    ShardSpec,
    SweepStats,
    clear_sweep_caches,
    effective_jobs,
    make_shards,
    parallel_inclusion_matrix,
    parallel_lattice_battery,
    parallel_nonconstructibility_witnesses,
    parallel_separation_witnesses,
    parallel_thm23_counts,
    run_shards,
    sweep_cache_info,
)
from repro.runtime.directory import DirectoryMemory, DirectoryStats
from repro.runtime.executor import execute
from repro.runtime.hierarchy import (
    HIERARCHY_PRESETS,
    HierarchicalBackerMemory,
    HierarchyConfig,
    HierarchyStats,
    LevelConfig,
    LevelStats,
)
from repro.runtime.paged_backer import PagedBackerMemory, PagedStats, modulo_pager
from repro.runtime.memory_base import MemorySystem, SerialMemory
from repro.runtime.replay import ReadDivergence, ReplayResult, replay
from repro.runtime.timed import TimedExecution, simulate_timed
from repro.runtime.scheduler import (
    Schedule,
    greedy_schedule,
    serial_schedule,
    work_stealing_schedule,
)
from repro.runtime.trace import ExecutionTrace, PartialObserver, ReadEvent

__all__ = [
    "Schedule",
    "greedy_schedule",
    "work_stealing_schedule",
    "serial_schedule",
    "MemorySystem",
    "SerialMemory",
    "BackerMemory",
    "BackerStats",
    "DirectoryMemory",
    "DirectoryStats",
    "HierarchicalBackerMemory",
    "HierarchyConfig",
    "HierarchyStats",
    "LevelConfig",
    "LevelStats",
    "HIERARCHY_PRESETS",
    "PagedBackerMemory",
    "PagedStats",
    "modulo_pager",
    "replay",
    "ReplayResult",
    "ReadDivergence",
    "execute",
    "simulate_timed",
    "TimedExecution",
    "ExecutionTrace",
    "PartialObserver",
    "ReadEvent",
    "ShardSpec",
    "SweepStats",
    "LatticeBatteryResult",
    "parallel_lattice_battery",
    "effective_jobs",
    "make_shards",
    "run_shards",
    "clear_sweep_caches",
    "sweep_cache_info",
    "parallel_inclusion_matrix",
    "parallel_separation_witnesses",
    "parallel_nonconstructibility_witnesses",
    "parallel_thm23_counts",
]
