"""Event-driven timed execution: work stealing with memory latency.

The unit-time scheduler (:mod:`repro.runtime.scheduler`) separates
*placement* from *cost*; this module closes the loop for the performance
claims the paper inherits from [BFJ+96a/b]: BACKER's running time is
``O(T₁/P + m·C·T∞)``-shaped, where ``m`` is the cache-miss service time.
Here each node's duration is

    ``duration(v) = 1 + m · (lines fetched or written back around v)``

and the simulation is a classic discrete-event loop: per-processor
clocks, owners popping their deque's newest work, and idle processors
stealing the oldest work of a uniformly random victim when a completion
makes work available.  A node is enabled only at its last predecessor's
*finish* event, so precedence holds in simulated time (validated by the
tests).

Protocol discipline (lazy consumer-side BACKER): when a node with a
cross-processor predecessor is dispatched, the predecessors' processors
reconcile (all predecessors have finished in simulated time, so this is
well-defined) and the consuming processor flushes; the whole transfer is
billed to the consuming node's duration.  A single processor therefore
pays zero protocol cost, matching real BACKER.

Memory operations are interleaved in global dispatch order, so the
resulting trace is post-mortem verifiable exactly like the untimed
executor's — and must still be LC under faithful BACKER (asserted by
tests and benches).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field

from repro import obs
from repro.core.computation import Computation
from repro.dag.random_dags import as_rng
from repro.errors import ScheduleError
from repro.runtime.backer import BackerMemory
from repro.runtime.memory_base import MemorySystem
from repro.runtime.trace import ReadEvent

__all__ = ["TimedExecution", "simulate_timed"]


@dataclass
class TimedExecution:
    """Result of a timed simulation.

    ``finish_of[v]`` is the completion time of node ``v``; ``proc_of``
    the processor that ran it.  ``reads`` has the same shape as
    :class:`~repro.runtime.trace.ExecutionTrace` read events, and
    :meth:`partial_observer` mirrors the untimed API so the verifiers
    apply unchanged.
    """

    comp: Computation
    num_procs: int
    miss_cost: int
    proc_of: list[int]
    start_of: list[float]
    finish_of: list[float]
    reads: list[ReadEvent] = field(default_factory=list)
    steals: int = 0

    @property
    def makespan(self) -> float:
        """Total simulated time."""
        return max(self.finish_of, default=0.0)

    def partial_observer(self):
        """The trace's partial observer function (see runtime.trace)."""
        from repro.runtime.trace import PartialObserver

        constraints: dict = {}
        for ev in self.reads:
            constraints.setdefault(ev.loc, {})[ev.node] = ev.observed
        for u in self.comp.nodes():
            op = self.comp.op(u)
            if op.is_write:
                constraints.setdefault(op.loc, {})[u] = u
        return PartialObserver(self.comp, constraints)

    def validate(self) -> None:
        """Check simulated-time precedence and coverage (used by tests)."""
        for (u, v) in self.comp.dag.edges:
            if self.start_of[v] < self.finish_of[u]:
                raise ScheduleError(
                    f"timed precedence violated on edge ({u}, {v})"
                )


def _line_counters(mem: MemorySystem) -> tuple[int, int]:
    stats = getattr(mem, "stats", None)
    if stats is None:
        return (0, 0)
    return (getattr(stats, "fetches", 0), getattr(stats, "writebacks", 0))


def simulate_timed(
    comp: Computation,
    num_procs: int,
    memory: MemorySystem | None = None,
    miss_cost: int = 4,
    rng: random.Random | int | None = None,
) -> TimedExecution:
    """Run a timed work-stealing execution of ``comp``.

    Parameters
    ----------
    memory:
        Defaults to a fresh :class:`BackerMemory`.  Protocol hooks fire
        as described in the module docstring; line transfers during a
        node extend its duration by ``miss_cost`` each.
    miss_cost:
        Service time ``m`` of one line transfer (``0`` recovers the
        unit-cost model).
    """
    if num_procs < 1:
        raise ScheduleError("need at least one processor")
    mem = memory if memory is not None else BackerMemory()
    with obs.span(
        "timed.simulate",
        nodes=comp.num_nodes,
        procs=num_procs,
        memory=mem.name,
        miss_cost=miss_cost,
    ) as sp:
        result = _simulate_body(comp, num_procs, mem, miss_cost, rng)
        if obs.enabled():
            # Simulated per-node service time: 1 + miss_cost · lines
            # moved — the histogram every backend's pricing feeds.
            for u in range(comp.num_nodes):
                obs.observe(
                    "timed.node_latency",
                    result.finish_of[u] - result.start_of[u],
                )
            obs.add("timed.runs")
            obs.add("timed.nodes", comp.num_nodes)
            obs.add("timed.steals", result.steals)
            obs.set_gauge("timed.makespan", result.makespan)
            if sp is not None:
                sp.attrs["steals"] = result.steals
                sp.attrs["makespan"] = result.makespan
            publish = getattr(mem, "publish_obs", None)
            if publish is not None:
                publish()
    return result


def _simulate_body(
    comp: Computation,
    num_procs: int,
    mem: MemorySystem,
    miss_cost: int,
    rng: random.Random | int | None,
) -> TimedExecution:
    r = as_rng(rng)
    n = comp.num_nodes
    mem.attach(num_procs)
    result = TimedExecution(
        comp=comp,
        num_procs=num_procs,
        miss_cost=miss_cost,
        proc_of=[0] * n,
        start_of=[0.0] * n,
        finish_of=[0.0] * n,
    )
    if n == 0:
        return result

    indeg = [comp.dag.in_degree(u) for u in range(n)]
    deques: list[list[int]] = [[] for _ in range(num_procs)]
    for u in range(n):
        if indeg[u] == 0:
            deques[0].append(u)

    # Event heap holds node completions: (finish_time, seq, node, proc).
    events: list[tuple[float, int, int, int]] = []
    seq = 0
    idle: set[int] = set(range(num_procs))
    done = 0
    proc_of = result.proc_of

    def dispatch(p: int, now: float) -> bool:
        """Try to start a node on processor ``p`` at time ``now``."""
        nonlocal seq, done
        u: int | None = None
        if deques[p]:
            u = deques[p].pop()
        else:
            victims = [q for q in range(num_procs) if q != p and deques[q]]
            if victims:
                u = deques[r.choice(victims)].pop(0)
                result.steals += 1
        if u is None:
            return False
        proc_of[u] = p
        result.start_of[u] = now
        before = _line_counters(mem)
        # Consumer-side protocol: all predecessors have finished (in
        # simulated time), so their processors' caches can be reconciled
        # now, after which p flushes — the lazy discipline of the untimed
        # executor, with the whole transfer billed to the consuming node.
        cross_pred = False
        for x in comp.dag.predecessors(u):
            if proc_of[x] != p:
                cross_pred = True
                mem.node_completed(proc_of[x], x, True)
        mem.node_starting(p, u, cross_pred)
        op = comp.op(u)
        if op.is_read:
            result.reads.append(ReadEvent(u, op.loc, mem.read(p, u, op.loc)))
        elif op.is_write:
            mem.write(p, u, op.loc)
        after = _line_counters(mem)
        lines_moved = (after[0] - before[0]) + (after[1] - before[1])
        finish = now + 1 + miss_cost * lines_moved
        result.finish_of[u] = finish
        heapq.heappush(events, (finish, seq, u, p))
        seq += 1
        return True

    # Start: processor 0 has the sources; everyone tries to dispatch.
    for p in range(num_procs):
        if dispatch(p, 0.0):
            idle.discard(p)

    while events:
        now, _s, u, p = heapq.heappop(events)
        done += 1
        for v in comp.dag.successors(u):
            indeg[v] -= 1
            if indeg[v] == 0:
                deques[p].append(v)
        # The finishing processor looks for work, then parked ones (new
        # work may be stealable).
        if dispatch(p, now):
            idle.discard(p)
        else:
            idle.add(p)
        for q in sorted(idle):
            if dispatch(q, now):
                idle.discard(q)

    if done != n:
        raise ScheduleError("timed simulation deadlocked (dag invariant?)")
    result.validate()
    return result
