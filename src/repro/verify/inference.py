"""Model inference and conformance campaigns.

Two user-facing tools built on the trace checkers:

* :func:`infer_models` — given a batch of traces from an *unknown*
  memory system, report which models of the zoo are consistent with
  every trace.  A memory "implements a model" (paper, Section 2) iff
  every behaviour it generates belongs to the model; observing traces
  gives a monotone refinement: each weak trace eliminates the models
  that forbid it.  Running BACKER long enough eliminates SC but never
  LC; a serialized memory never eliminates anything.
* :func:`conformance_campaign` — randomized testing of a
  :class:`~repro.runtime.memory_base.MemorySystem` implementation
  against a target guarantee: random workloads × schedules × seeds,
  every trace verified, violations reported with their reproduction
  parameters.  This is the post-mortem methodology of the paper's
  introduction packaged as a harness (and the tool that catches the
  fault-injected protocols in one call).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.computation import Computation
from repro.runtime.executor import execute
from repro.runtime.memory_base import MemorySystem
from repro.runtime.scheduler import work_stealing_schedule
from repro.runtime.trace import PartialObserver
from repro.verify.checker import find_completion, trace_admits_lc, trace_admits_sc

__all__ = [
    "InferenceResult",
    "infer_models",
    "ConformanceReport",
    "conformance_campaign",
]

#: The zoo, strongest first; inference reports a verdict per name.
MODEL_NAMES = ("SC", "LC", "NN", "NW", "WN", "WW")


def _trace_consistent_with(
    name: str, partial: PartialObserver, completion_budget: int
) -> bool:
    if name == "SC":
        return trace_admits_sc(partial) is not None
    if name == "LC":
        return trace_admits_lc(partial)
    # Dag models: LC completability implies membership (LC ⊆ NN ⊆ all),
    # so only non-LC traces need the bounded completion search.
    if trace_admits_lc(partial):
        return True
    from repro.models import NN, NW, WN, WW

    model = {"NN": NN, "NW": NW, "WN": WN, "WW": WW}[name]
    try:
        return find_completion(model, partial, completion_budget) is not None
    except ValueError:
        # Search space too large to decide: be conservative (do not
        # eliminate the model on an undecided trace).
        return True


@dataclass
class InferenceResult:
    """Which models survived a batch of traces.

    ``consistent[name]`` — no observed trace is outside the model.
    ``eliminated_by[name]`` — index of the first eliminating trace.
    """

    traces_seen: int = 0
    consistent: dict[str, bool] = field(
        default_factory=lambda: {n: True for n in MODEL_NAMES}
    )
    eliminated_by: dict[str, int] = field(default_factory=dict)

    def strongest_consistent(self) -> str | None:
        """The strongest surviving model (zoo order), if any."""
        for name in MODEL_NAMES:
            if self.consistent[name]:
                return name
        return None


def infer_models(
    partials: Iterable[PartialObserver],
    completion_budget: int = 50_000,
) -> InferenceResult:
    """Refine the model verdicts over a batch of trace observations."""
    result = InferenceResult()
    for partial in partials:
        idx = result.traces_seen
        result.traces_seen += 1
        for name in MODEL_NAMES:
            if not result.consistent[name]:
                continue
            if not _trace_consistent_with(name, partial, completion_budget):
                result.consistent[name] = False
                result.eliminated_by[name] = idx
    return result


@dataclass
class Violation:
    """One conformance failure with its reproduction parameters."""

    workload_index: int
    procs: int
    seed: int
    num_constraints: int


@dataclass
class ConformanceReport:
    """Outcome of a conformance campaign."""

    target: str
    runs: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff no run violated the target guarantee."""
        return not self.violations


def conformance_campaign(
    memory_factory: Callable[[int], MemorySystem],
    workloads: Sequence[Computation],
    target: str = "LC",
    procs: Sequence[int] = (2, 4),
    seeds: Sequence[int] = tuple(range(10)),
    completion_budget: int = 50_000,
) -> ConformanceReport:
    """Randomized conformance testing of a memory implementation.

    ``memory_factory(seed)`` must return a fresh memory per run (so
    fault-injection RNGs do not correlate across runs).  ``target`` is a
    zoo model name; every (workload, procs, seed) execution's trace is
    checked against it.
    """
    if target not in MODEL_NAMES:
        raise ValueError(f"unknown target model {target!r}")
    report = ConformanceReport(target=target)
    for wi, comp in enumerate(workloads):
        for p in procs:
            for seed in seeds:
                sched = work_stealing_schedule(
                    comp, p, rng=random.Random(seed)
                )
                trace = execute(sched, memory_factory(seed))
                partial = trace.partial_observer()
                report.runs += 1
                if not _trace_consistent_with(
                    target, partial, completion_budget
                ):
                    report.violations.append(
                        Violation(wi, p, seed, partial.num_constraints())
                    )
    return report
