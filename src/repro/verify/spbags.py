"""SP-bags determinacy-race detection and lockset analysis.

The Feng–Leiserson *SP-bags* algorithm [FL97, "An Empirical Comparison
of Monitoring Algorithms for Access Anomaly Detection"] detects
determinacy races in a series-parallel computation in near-linear time
— one serial left-to-right walk of the SP expression with a union-find
of "bags", no transitive closure anywhere.  This is the detector Cilk
shipped alongside dag consistency, and the reason race checking scales
to the thousands-of-nodes computations :mod:`repro.lang.programs`
unfolds where the exact sweep (:func:`repro.verify.races.find_races`)
pays for reachability rows.

How it maps onto this codebase:

* The SP expression comes from :attr:`repro.lang.cilk.UnfoldInfo.sp`
  (recorded during ``unfold``) or, for bare computations, from
  :func:`repro.dag.sp.sp_decompose`.
* Every bag is a union-find set whose root is marked ``"S"`` (serially
  before the walk's current position) or ``"P"`` (parallel to it).
  Leaves start in their own S-bag; finishing the *i*-th child of a
  parallel node flips its bag to P (parallel with the remaining
  siblings); finishing the parallel node itself — the sync — flips the
  merged bag back to S.
* Per location the walk keeps one shadow writer and one shadow reader;
  an access races exactly when the recorded accessor's bag finds to P.

Guarantee (Feng–Leiserson): for every location, at least one race on
that location is reported iff the location is racy — so the *racy
location sets* of SP-bags and the exact sweep coincide, and every pair
SP-bags reports is a genuine race, but it does not enumerate all
``O(n^2)`` racing pairs.  Both facts are property-tested exhaustively
against :func:`~repro.verify.races.find_races`.

The lockset extension (in the spirit of Cheng et al.'s ALL-SETS /
BRELLY) classifies each determinacy race by the locks held on both
sides: a race whose sides hold no common lock is a genuine *data race*
even under lock serialization; a common lock makes it *lock-mediated*
— ordered once :mod:`repro.locks` serializes the sections, which is a
per-execution choice the bare dag does not encode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro import obs
from repro.core.computation import Computation
from repro.dag.digraph import bit_indices
from repro.dag.sp import SPNode, sp_decompose
from repro.verify.races import Race

__all__ = [
    "spbags_races",
    "node_locksets",
    "ClassifiedRace",
    "classify_races",
]


class _DSU:
    """Union-find over bags; each root carries an ``"S"``/``"P"`` kind."""

    __slots__ = ("parent", "rank", "kinds")

    def __init__(self) -> None:
        self.parent: list[int] = []
        self.rank: list[int] = []
        self.kinds: list[str] = []

    def make(self, kind: str) -> int:
        x = len(self.parent)
        self.parent.append(x)
        self.rank.append(0)
        self.kinds.append(kind)
        return x

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        return ra

    def kind(self, x: int) -> str:
        return self.kinds[self.find(x)]

    def set_kind(self, x: int, kind: str) -> None:
        self.kinds[self.find(x)] = kind


def spbags_races(
    comp: Computation, sp: SPNode | None = None
) -> list[Race]:
    """Run SP-bags over ``comp``; returns the detected races.

    ``sp`` is the computation's series-parallel expression with node
    ids as leaf payloads — pass :attr:`UnfoldInfo.sp` when you have it;
    otherwise it is recovered with :func:`sp_decompose` (quadratic, and
    raises :class:`ValueError` if the dag is not series-parallel).

    Races come out normalized like :func:`find_races`' (``u < v``, same
    kinds) in shadow-state discovery order; per racy location at least
    one pair is reported, and nothing is reported for race-free ones.
    """
    if sp is None:
        sp = sp_decompose(comp.dag)
        if sp is None:
            raise ValueError(
                "computation's dag is not series-parallel; "
                "SP-bags needs an SP expression"
            )
    with obs.span("verify.spbags", nodes=comp.num_nodes) as spn:
        races = _spbags_walk(comp, sp)
        if spn is not None:
            spn.attrs["races"] = len(races)
    if obs.enabled():
        obs.add("spbags.runs")
        obs.add("spbags.races", len(races))
    return races


def _spbags_walk(comp: Computation, sp: SPNode) -> list[Race]:
    ops = comp.ops
    dsu = _DSU()
    leaf_bag: dict[int, int] = {}
    shadow_writer: dict[object, int] = {}
    shadow_reader: dict[object, int] = {}
    races: list[Race] = []

    def report(loc: object, a: int, b: int) -> None:
        u, v = (a, b) if a < b else (b, a)
        kind = (
            "write-write"
            if ops[u].is_write and ops[v].is_write
            else "read-write"
        )
        races.append(Race(loc, u, v, kind))

    def access(u: int) -> None:
        op = ops[u]
        loc = op.loc
        if loc is None:
            return
        if op.is_write:
            r = shadow_reader.get(loc)
            if r is not None and dsu.kind(leaf_bag[r]) == "P":
                report(loc, r, u)
            w = shadow_writer.get(loc)
            if w is not None and dsu.kind(leaf_bag[w]) == "P":
                report(loc, w, u)
            shadow_writer[loc] = u
        else:
            w = shadow_writer.get(loc)
            if w is not None and dsu.kind(leaf_bag[w]) == "P":
                report(loc, w, u)
            r = shadow_reader.get(loc)
            if r is None or dsu.kind(leaf_bag[r]) == "S":
                shadow_reader[loc] = u

    # Iterative serial walk.  Frame: [node, next-child index, acc bag].
    # ``returned`` carries the bag of the subtree that just completed;
    # revisiting a frame with children started folds it into the
    # accumulator — marked P under a parallel node (it is parallel to
    # the siblings still to run), S under a series node.
    next_leaf = 0
    returned = -1
    stack: list[list] = [[sp, 0, -1]]
    while stack:
        frame = stack[-1]
        node: SPNode = frame[0]
        if node.kind == "leaf":
            payload = node.payload
            u = next_leaf if payload is None else int(payload)  # type: ignore[call-overload]
            next_leaf += 1
            bag = dsu.make("S")
            leaf_bag[u] = bag
            access(u)
            returned = bag
            stack.pop()
            continue
        if frame[1] > 0:
            frame[2] = (
                returned if frame[2] < 0 else dsu.union(frame[2], returned)
            )
            dsu.set_kind(
                frame[2], "P" if node.kind == "parallel" else "S"
            )
        if frame[1] < len(node.children):
            child = node.children[frame[1]]
            frame[1] += 1
            stack.append([child, 0, -1])
            continue
        if node.kind == "parallel":
            dsu.set_kind(frame[2], "S")  # the sync: serial from here on
        returned = frame[2]
        stack.pop()
    return races


def node_locksets(
    comp: Computation,
    lock_sections: dict[object, list[tuple[int, int]]],
) -> tuple[frozenset, ...]:
    """The set of locks held at each node, indexed by node id.

    A node holds lock ``L`` iff some recorded section ``(a, r)`` on
    ``L`` brackets it in the dag: ``a ⪯ u ⪯ r``.  (Ops spawned inside a
    section but not synced before the release are genuinely *not*
    bracketed — they escape the critical section, exactly the bug this
    analysis exists to expose.)  Computed as one betweenness mask per
    section from the cached reachability rows.
    """
    dag = comp.dag
    held: list[set] = [set() for _ in range(dag.num_nodes)]
    for lock, sections in lock_sections.items():
        for a, r in sections:
            between = (dag.descendants_mask(a) | (1 << a)) & (
                dag.ancestors_mask(r) | (1 << r)
            )
            for u in bit_indices(between):
                held[u].add(lock)
    return tuple(frozenset(s) for s in held)


@dataclass(frozen=True)
class ClassifiedRace:
    """A determinacy race annotated with the locks held on each side.

    ``classification`` is ``"data-race"`` when the two sides hold no
    common lock (no serialization of lock sections can order them) and
    ``"lock-mediated"`` otherwise (a common lock means
    :mod:`repro.locks`-style section serialization orders the pair —
    the race is a scheduling artifact of the bare dag, not a bug).
    """

    race: Race
    locks_u: frozenset
    locks_v: frozenset

    @property
    def classification(self) -> str:
        return (
            "lock-mediated"
            if self.locks_u & self.locks_v
            else "data-race"
        )


def classify_races(
    races: Iterable[Race], locksets: Sequence[frozenset]
) -> list[ClassifiedRace]:
    """Annotate each race with both sides' locksets (ALL-SETS style)."""
    return [
        ClassifiedRace(r, locksets[r.u], locksets[r.v]) for r in races
    ]
