"""Race lint — compatibility shim.

The single-engine lint of PR 2 grew into the multi-rule static-analysis
framework of :mod:`repro.analysis`; the race engine itself now lives in
:mod:`repro.analysis.race_rules` (registered there as rule ``RACE001``).
This module re-exports the historical public names so existing imports
(``from repro.verify.lint import lint_computation``, and the
``repro.verify`` package exports) keep working unchanged.

The re-export is lazy (PEP 562): the analysis modules import
``repro.verify.races`` / ``repro.verify.spbags``, which runs the
``repro.verify`` package __init__ — an eager import back into
:mod:`repro.analysis` here would close that loop mid-initialization.
"""

from __future__ import annotations

from typing import Any

__all__ = ["Diagnostic", "LintReport", "lint_computation", "ENGINES"]


def __getattr__(name: str) -> Any:
    if name in __all__:
        from repro.analysis import race_rules

        return getattr(race_rules, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
