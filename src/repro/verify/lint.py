"""Race lint: structured diagnostics over a computation's analyzers.

This is the engine behind ``repro lint`` — it runs the race analyzers
(:mod:`repro.verify.spbags` by default, the exact closure sweep on
demand) over one computation, classifies each race by the locks held on
both sides, and packages the result as :class:`Diagnostic` records that
render as one-line text or JSON for CI consumption.

Classification (see :class:`repro.verify.spbags.ClassifiedRace`):

* ``data-race`` — the sides share no lock; no serialization of
  critical sections orders them.  These fail the lint.
* ``lock-mediated`` — a common lock covers both sides; once
  :mod:`repro.locks` serializes the sections the pair is ordered, so it
  is reported for information but does not fail the lint (the bare dag
  races only because the dag does not encode mutual exclusion).

Engines:

* ``"sp-bags"`` — near-linear, needs a series-parallel computation
  (recorded SP expression or :func:`~repro.dag.sp.sp_decompose`);
  reports at least one race per racy location.
* ``"closure"`` — the exact sweep, every racing pair, any dag.
* ``"auto"`` (default) — SP-bags when the computation is SP, closure
  otherwise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro import obs
from repro.core.computation import Computation
from repro.dag.sp import SPNode, sp_decompose
from repro.verify.races import find_races
from repro.verify.spbags import (
    classify_races,
    node_locksets,
    spbags_races,
)

__all__ = ["Diagnostic", "LintReport", "lint_computation"]

ENGINES = ("auto", "sp-bags", "closure")


@dataclass(frozen=True)
class Diagnostic:
    """One racing pair, fully annotated for reporting."""

    loc: str
    kind: str  # "write-write" | "read-write"
    classification: str  # "data-race" | "lock-mediated"
    u: int
    v: int
    u_path: str | None
    v_path: str | None
    locks_u: tuple[str, ...]
    locks_v: tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "loc": self.loc,
            "kind": self.kind,
            "classification": self.classification,
            "u": {"node": self.u, "path": self.u_path},
            "v": {"node": self.v, "path": self.v_path},
            "locks_u": list(self.locks_u),
            "locks_v": list(self.locks_v),
        }

    def render(self) -> str:
        def side(node: int, path: str | None) -> str:
            return f"{path} (node {node})" if path else f"node {node}"

        locks = ""
        if self.locks_u or self.locks_v:
            locks = (
                f"  locks {{{', '.join(self.locks_u)}}}"
                f" vs {{{', '.join(self.locks_v)}}}"
            )
        return (
            f"{self.classification} {self.kind} at {self.loc}: "
            f"{side(self.u, self.u_path)} ∥ {side(self.v, self.v_path)}"
            f"{locks}"
        )


@dataclass
class LintReport:
    """Everything ``repro lint`` knows about one computation."""

    target: str
    engine: str
    num_nodes: int
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def data_races(self) -> list[Diagnostic]:
        return [
            d for d in self.diagnostics if d.classification == "data-race"
        ]

    @property
    def clean(self) -> bool:
        """True iff no *data* race was found (lock-mediated pairs pass)."""
        return not self.data_races

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "engine": self.engine,
            "nodes": self.num_nodes,
            "clean": self.clean,
            "races": len(self.diagnostics),
            "data_races": len(self.data_races),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        head = (
            f"{self.target}: {self.num_nodes} nodes, engine={self.engine}"
        )
        if not self.diagnostics:
            return f"{head}: clean — no races"
        lines = [
            f"{head}: {len(self.diagnostics)} race(s), "
            f"{len(self.data_races)} data race(s)"
        ]
        lines += [f"  {d.render()}" for d in self.diagnostics]
        return "\n".join(lines)


def lint_computation(
    comp: Computation,
    *,
    target: str = "<computation>",
    engine: str = "auto",
    sp: SPNode | None = None,
    lock_sections: Mapping[object, list[tuple[int, int]]] | None = None,
    node_paths: Sequence[str] | None = None,
    names: Mapping[str, int] | None = None,
) -> LintReport:
    """Run the race analyzers over one computation.

    ``sp``, ``lock_sections``, ``node_paths`` and ``names`` are the
    matching :class:`~repro.lang.cilk.UnfoldInfo` fields when the
    computation came from ``unfold``; all optional (paths fall back to
    node names, locks to the empty set, the SP expression to
    :func:`sp_decompose`).
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown lint engine {engine!r} (choose from {ENGINES})"
        )
    if engine in ("auto", "sp-bags") and sp is None:
        sp = sp_decompose(comp.dag)
        if sp is None:
            if engine == "sp-bags":
                raise ValueError(
                    "computation is not series-parallel; "
                    "use engine='closure'"
                )
            engine = "closure"
    with obs.span(
        "verify.lint", target=target, engine=engine, nodes=comp.num_nodes
    ) as spn:
        if engine == "closure":
            races = list(find_races(comp))
        else:
            engine = "sp-bags"
            races = spbags_races(comp, sp)

        locksets = node_locksets(comp, dict(lock_sections or {}))
        classified = classify_races(races, locksets)
        if spn is not None:
            spn.attrs["engine"] = engine
            spn.attrs["races"] = len(classified)

    label: dict[int, str | None] = {}
    if names:
        for name, u in names.items():
            label[u] = name
    if node_paths:
        for u, path in enumerate(node_paths):
            label.setdefault(u, path)

    report = LintReport(target, engine, comp.num_nodes)
    for c in classified:
        report.diagnostics.append(
            Diagnostic(
                loc=repr(c.race.loc),
                kind=c.race.kind,
                classification=c.classification,
                u=c.race.u,
                v=c.race.v,
                u_path=label.get(c.race.u),
                v_path=label.get(c.race.v),
                locks_u=tuple(sorted(map(str, c.locks_u))),
                locks_v=tuple(sorted(map(str, c.locks_v))),
            )
        )
    if obs.enabled():
        obs.add("lint.runs")
        for d in report.diagnostics:
            key = d.classification.replace("-", "_")
            obs.add(f"lint.{key}")
    return report
