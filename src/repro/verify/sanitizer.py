"""TSan-style execution sanitizer: catch model violations at the event.

Post-mortem verification (:func:`repro.verify.trace_admits_lc`, the
streaming checker) answers "was this execution consistent?" after the
run.  A broken memory system — a fault-injected backer dropping
reconciles, a paging bug — is then diagnosed from the completed trace.
This module moves the check *into* the execution, the way ThreadSanitizer
sits inside a running program: :func:`repro.runtime.executor.execute`
feeds every node to a :class:`TraceSanitizer` as it executes, each read
is checked incrementally against the model's allowed last-writers, and
the first violating event halts the run with a minimal witness.

The invariant checked is location consistency (LC, the paper's weakest
model and the one every simulated memory here promises): per location
the observed writes must embed into a single serialization respected by
the dag.  The sanitizer maintains the per-location quotient-block
structure of :class:`repro.verify.streaming.StreamingLCVerifier` — a
violation is an edge into the ⊥ block or a cycle among blocks — but
works on the computation's *original node ids* and additionally records
which event introduced each quotient edge, so a violation comes with a
*witness*: the shortest chain of node ids whose observations are
mutually contradictory.  For a fault-injected backer this pinpoints the
exact read that returned the stale value, not just "the trace fails".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro import obs
from repro.core.computation import Computation
from repro.core.ops import Location, Op
from repro.runtime.trace import ExecutionTrace

__all__ = ["SanitizerViolation", "TraceSanitizer"]

_BOT = ("⊥",)  # per-location bottom block (cannot collide with node ids)


@dataclass(frozen=True)
class SanitizerViolation:
    """The first event at which the execution left the model.

    ``witness`` is a minimal chain of node ids demonstrating the
    contradiction: the nodes whose observations created the quotient
    edges on the violating cycle (or the write an upstream event was
    bound to, for a ⊥ violation), ending with the violating node
    itself.  ``event_index`` is the position in execution order.
    """

    node: int
    loc: Location
    observed: int | None
    reason: str
    witness: tuple[int, ...]
    event_index: int


class TraceSanitizer:
    """Incremental LC checker fed by the executor, node by node.

    Feed order must be a topological order of the computation —
    execution order always qualifies.  ``halt`` (default) tells the
    executor to stop at the first violation; either way the sanitizer
    latches the first violation and keeps returning it.

    ``keep_going`` (which forces ``halt`` off) keeps checking *every*
    event after the first violation: each violating event contributes
    one :class:`SanitizerViolation` (with its own minimal witness) to
    :attr:`violations`, and the contradictory quotient edge is *not*
    inserted — the established serialization stays intact, so one stale
    read does not cascade into spurious findings on unrelated events.
    :attr:`violation` still latches the first violation either way.

    Use via ``execute(schedule, memory, sanitizer=TraceSanitizer(comp))``
    or standalone with :meth:`check_trace` /
    :meth:`collect_violations` on a completed trace.
    """

    def __init__(
        self,
        comp: Computation,
        halt: bool = True,
        keep_going: bool = False,
    ) -> None:
        self.comp = comp
        self.keep_going = keep_going
        self.halt = halt and not keep_going
        self.violation: SanitizerViolation | None = None
        self.violations: list[SanitizerViolation] = []
        self.events = 0
        #: per location: quotient edges ``a -> {b: origin node id}``.
        self._adj: dict[Location, dict[object, dict[object, int]]] = {}
        #: per seen node: per location, ancestor block ids.
        self._anc: dict[int, dict[Location, frozenset]] = {}
        #: per seen node: per location, its own block id.
        self._own: dict[int, dict[Location, object]] = {}

    # ------------------------------------------------------------------
    # Quotient maintenance with edge provenance
    # ------------------------------------------------------------------

    def _cycle_witness(
        self, loc: Location, src: object, dst: object
    ) -> tuple[int, ...] | None:
        """Origin nodes along a quotient path ``src → … → dst``, if any."""
        adj = self._adj.get(loc, {})
        parent: dict[object, tuple[object, int]] = {}
        stack = [src]
        seen = {src}
        while stack:
            b = stack.pop()
            if b == dst:
                chain: list[int] = []
                cur = b
                while cur in parent:
                    prev, origin = parent[cur]
                    chain.append(origin)
                    cur = prev
                chain.reverse()
                return tuple(chain)
            for c, origin in adj.get(b, {}).items():
                if c not in seen:
                    seen.add(c)
                    parent[c] = (b, origin)
                    stack.append(c)
        return None

    def _insert(
        self,
        node: int,
        idx: int,
        loc: Location,
        a: object,
        b: object,
        observed: int | None,
    ) -> SanitizerViolation | None:
        if a == b:
            return None
        if b == _BOT:
            # ``a`` is a write's block, so its id *is* the writer node.
            anchor = (a,) if isinstance(a, int) else ()
            return SanitizerViolation(
                node,
                loc,
                None,
                f"read observed ⊥ at {loc!r} although an earlier event "
                f"was already bound to write {a!r}",
                anchor + (node,),
                idx,
            )
        adj = self._adj.setdefault(loc, {})
        if b in adj:
            chain = self._cycle_witness(loc, b, a)
            if chain is not None:
                return SanitizerViolation(
                    node,
                    loc,
                    observed,
                    f"stale value at {loc!r}: observing write {b!r} "
                    f"contradicts the established order after {a!r} "
                    "(cycle in the write serialization)",
                    chain + (node,),
                    idx,
                )
        adj.setdefault(a, {})[b] = node
        adj.setdefault(b, {})
        return None

    # ------------------------------------------------------------------
    # Event interface (called by the executor)
    # ------------------------------------------------------------------

    def on_node(
        self,
        node: int,
        op: Op,
        preds: Iterable[int],
        observed: int | None = None,
    ) -> SanitizerViolation | None:
        """Consume one executed node; return the first violation, if any.

        ``node`` and ``preds`` are original computation node ids;
        ``observed`` is the writer id the memory returned for a read
        (``None`` for ⊥; ignored for writes and no-ops).
        """
        if self.violation is not None and not self.keep_going:
            return self.violation
        idx = self.events
        self.events += 1
        obs.add("sanitizer.events")

        anc: dict[Location, set] = {}
        for p in preds:
            for loc, blocks in self._anc.get(p, {}).items():
                anc.setdefault(loc, set()).update(blocks)
            for loc, block in self._own.get(p, {}).items():
                anc.setdefault(loc, set()).add(block)

        own: dict[Location, object] = {}
        if op.is_write:
            own[op.loc] = node
        elif op.is_read:
            own[op.loc] = _BOT if observed is None else observed

        event_violation: SanitizerViolation | None = None
        for loc, b in own.items():
            for a in anc.get(loc, ()):
                v = self._insert(node, idx, loc, a, b, observed)
                if v is not None:
                    event_violation = v
                    break
            if event_violation is not None:
                # The contradictory edge was not inserted: the
                # established serialization stays authoritative, so
                # later events are judged against it, not the glitch.
                break
            self._adj.setdefault(loc, {}).setdefault(b, {})

        self._anc[node] = {loc: frozenset(s) for loc, s in anc.items()}
        self._own[node] = own
        if event_violation is not None:
            self.violations.append(event_violation)
            if self.violation is None:
                self.violation = event_violation
            obs.add("sanitizer.violations")
        return self.violation

    @property
    def consistent_so_far(self) -> bool:
        """True iff no violation has been detected yet."""
        return self.violation is None

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    @classmethod
    def check_trace(
        cls, trace: ExecutionTrace
    ) -> SanitizerViolation | None:
        """Replay a completed trace through a fresh sanitizer."""
        comp = trace.comp
        observed = {e.node: e.observed for e in trace.reads}
        san = cls(comp)
        for u in trace.schedule.execution_order():
            v = san.on_node(
                u,
                comp.op(u),
                comp.dag.predecessors(u),
                observed.get(u),
            )
            if v is not None:
                return v
        return None

    @classmethod
    def collect_violations(
        cls, trace: ExecutionTrace
    ) -> list[SanitizerViolation]:
        """Replay a completed trace, collecting *every* violation.

        A ``keep_going`` sanitizer over the recorded events: one
        violation (with its minimal witness) per violating event, in
        event order — the bulk-reporting mode ``repro lint`` uses on
        trace targets.
        """
        comp = trace.comp
        observed = {e.node: e.observed for e in trace.reads}
        san = cls(comp, keep_going=True)
        for u in trace.schedule.execution_order():
            san.on_node(
                u,
                comp.op(u),
                comp.dag.predecessors(u),
                observed.get(u),
            )
        return san.violations
