"""Post-mortem verification: did this execution obey the memory model?

The entry points take a :class:`~repro.runtime.trace.PartialObserver`
(obtained from :meth:`ExecutionTrace.partial_observer`):

* :func:`trace_admits_lc` / :func:`lc_completion` — polynomial LC check
  with a total-observer certificate;
* :func:`trace_admits_sc` — exact SC check (returns a witnessing sort);
* :func:`find_completion` — bounded completion search against any model.
"""

from repro.verify.checker import (
    find_completion,
    lc_completion,
    lc_trace_orders,
    trace_admits_lc,
    trace_admits_sc,
)
from repro.verify.inference import (
    ConformanceReport,
    InferenceResult,
    conformance_campaign,
    infer_models,
)
from repro.verify.causal_trace import (
    CausalViolation,
    StreamingCCVerifier,
    trace_admits_cc,
)
from repro.verify.races import Race, find_races, is_race_free, racy_locations
from repro.verify.streaming import StreamingLCVerifier, StreamingViolation

__all__ = [
    "trace_admits_lc",
    "lc_completion",
    "lc_trace_orders",
    "trace_admits_sc",
    "find_completion",
    "Race",
    "find_races",
    "is_race_free",
    "racy_locations",
    "infer_models",
    "InferenceResult",
    "conformance_campaign",
    "ConformanceReport",
    "StreamingLCVerifier",
    "StreamingViolation",
    "StreamingCCVerifier",
    "CausalViolation",
    "trace_admits_cc",
]
