"""Post-mortem verification: did this execution obey the memory model?

The entry points take a :class:`~repro.runtime.trace.PartialObserver`
(obtained from :meth:`ExecutionTrace.partial_observer`):

* :func:`trace_admits_lc` / :func:`lc_completion` — polynomial LC check
  with a total-observer certificate;
* :func:`trace_admits_sc` — exact SC check (returns a witnessing sort);
* :func:`find_completion` — bounded completion search against any model.

Static analysis lives here too: the exact race sweep
(:mod:`repro.verify.races`), the near-linear SP-bags detector with
lockset classification (:mod:`repro.verify.spbags`), the lint engine
behind ``repro lint`` (:mod:`repro.verify.lint`), and the in-execution
trace sanitizer (:mod:`repro.verify.sanitizer`).
"""

from repro.verify.checker import (
    find_completion,
    lc_completion,
    lc_trace_orders,
    trace_admits_lc,
    trace_admits_sc,
)
from repro.verify.inference import (
    ConformanceReport,
    InferenceResult,
    conformance_campaign,
    infer_models,
)
from repro.verify.causal_trace import (
    CausalViolation,
    StreamingCCVerifier,
    trace_admits_cc,
)
from repro.verify.races import (
    Race,
    find_races,
    find_races_naive,
    is_race_free,
    racy_locations,
)
from repro.verify.sanitizer import SanitizerViolation, TraceSanitizer
from repro.verify.spbags import (
    ClassifiedRace,
    classify_races,
    node_locksets,
    spbags_races,
)
from repro.verify.streaming import StreamingLCVerifier, StreamingViolation

#: The race-lint engine moved to :mod:`repro.analysis.race_rules` (rule
#: ``RACE001``); these names are re-exported lazily so that importing
#: any ``repro.verify`` submodule — which runs this package __init__ —
#: does not drag the whole analysis framework in (and, symmetrically,
#: the analysis modules can import ``repro.verify.races``/``spbags``
#: without closing an import cycle).
_LINT_EXPORTS = ("Diagnostic", "LintReport", "lint_computation")


def __getattr__(name: str):
    if name in _LINT_EXPORTS:
        from repro.verify import lint

        return getattr(lint, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


__all__ = [
    "trace_admits_lc",
    "lc_completion",
    "lc_trace_orders",
    "trace_admits_sc",
    "find_completion",
    "Race",
    "find_races",
    "find_races_naive",
    "is_race_free",
    "racy_locations",
    "spbags_races",
    "node_locksets",
    "classify_races",
    "ClassifiedRace",
    "Diagnostic",
    "LintReport",
    "lint_computation",
    "TraceSanitizer",
    "SanitizerViolation",
    "infer_models",
    "InferenceResult",
    "conformance_campaign",
    "ConformanceReport",
    "StreamingLCVerifier",
    "StreamingViolation",
    "StreamingCCVerifier",
    "CausalViolation",
    "trace_admits_cc",
]
