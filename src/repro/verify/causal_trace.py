"""Streaming causal-consistency verification of traces.

The trace-level counterpart of :class:`repro.models.causal.CC`: events
arrive in execution order, each read naming its writer; the verifier
maintains the causal order κ (precedence ∪ reads-from) incrementally
and checks, per read, that the observed write is not causally
overwritten.

Why streaming is natural here: every new edge — dag or observation —
points *into* the newest node, so κ can never become cyclic online, and
each node's causal past is just the union of its predecessors' and
observed writers' pasts.  One bitset union per event, one
writes-in-past scan per read.

**Exactness.**  For traces (reads-and-writes-only constraints), passing
this check is equivalent to the existence of a *total* CC observer
function completing the trace: complete each unconstrained (l, u) with
a κ-maximal l-write of u's causal past (⊥ if none).  Such a value's
observation edge is redundant (the write is already κ-before u), so κ
is unchanged, and maximality satisfies the overwritten condition — the
same argument that makes CC constructible.

The companion experiment (`bench_causal.py`,
``tests/test_causal_trace.py``): does the simulated BACKER maintain CC?
Atomic whole-cache reconciles publish a processor's writes together, so
the usual causality violations (MP) cannot arise from the protocol —
the benchmark sweeps workloads and reports the verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.ops import Op, Location
from repro.dag.digraph import bit_indices
from repro.runtime.trace import ExecutionTrace

__all__ = ["CausalViolation", "StreamingCCVerifier", "trace_admits_cc"]


@dataclass(frozen=True)
class CausalViolation:
    """The first causally-inconsistent read."""

    node: int
    loc: Location
    reason: str


class StreamingCCVerifier:
    """Incremental causal-memory checking over an event stream."""

    def __init__(self) -> None:
        #: reflexive κ-past bitset per node (feed numbering).
        self._past: list[int] = []
        #: per location: bitset of writer nodes seen so far.
        self._writers: dict[Location, int] = {}
        self.violation: CausalViolation | None = None

    def add_node(
        self,
        op: Op,
        preds: Iterable[int],
        observed: int | None = None,
    ) -> CausalViolation | None:
        """Consume the next node (feed order must be topological)."""
        if self.violation is not None:
            return self.violation
        node = len(self._past)
        past = 1 << node
        for p in preds:
            past |= self._past[p]
        if op.is_read:
            loc = op.loc
            writers = self._writers.get(loc, 0)
            if observed is not None:
                past |= self._past[observed]
                # Overwritten check: an l-write in the read's causal past
                # that has the observed write strictly in *its* past.
                for w2 in bit_indices(past & writers & ~(1 << observed)):
                    if self._past[w2] & (1 << observed):
                        self.violation = CausalViolation(
                            node, loc,
                            f"observed write {observed} causally overwritten "
                            f"by write {w2}",
                        )
                        break
            else:
                if past & writers:
                    self.violation = CausalViolation(
                        node, loc,
                        "read observed ⊥ with a write in its causal past",
                    )
        elif op.is_write:
            self._writers[op.loc] = self._writers.get(op.loc, 0) | (1 << node)
        self._past.append(past)
        return self.violation

    @property
    def consistent_so_far(self) -> bool:
        """True iff no violation has been detected yet."""
        return self.violation is None

    @classmethod
    def check_trace(cls, trace: ExecutionTrace) -> CausalViolation | None:
        """Stream a completed trace; returns the first violation."""
        comp = trace.comp
        observed = {e.node: e.observed for e in trace.reads}
        order = trace.schedule.execution_order()
        new_id = {u: i for i, u in enumerate(order)}
        verifier = cls()
        for u in order:
            obs = observed.get(u)
            v = verifier.add_node(
                comp.op(u),
                [new_id[p] for p in comp.dag.predecessors(u)],
                None if obs is None else new_id[obs],
            )
            if v is not None:
                return CausalViolation(u, v.loc, v.reason)
        return None


def trace_admits_cc(partial_or_trace) -> bool:
    """Whether a trace (or trace-shaped partial observer) is causally
    consistent, i.e. completes to a member of
    :data:`repro.models.causal.CC`.

    Accepts an :class:`~repro.runtime.trace.ExecutionTrace` directly, or
    a :class:`~repro.runtime.trace.PartialObserver` whose constraints
    cover exactly the reads and writes (the shape traces produce) — for
    the latter the computation's own topological order is streamed.
    """
    if isinstance(partial_or_trace, ExecutionTrace):
        return StreamingCCVerifier.check_trace(partial_or_trace) is None
    partial = partial_or_trace
    comp = partial.comp
    constrained = {
        (loc, u): v for loc, u, v in partial.entries()
    }
    # Feed order must put every observed writer before its observer (a
    # read may observe a *concurrent* write), i.e. topologically sort
    # the observation-augmented graph; a cycle there is already a CC
    # violation (κ cyclic).
    from repro.dag.digraph import Dag
    from repro.errors import CycleError

    edges = list(comp.dag.edges)
    for (loc, u), v in constrained.items():
        if v is not None and v != u:
            edges.append((v, u))
    try:
        order = Dag(comp.num_nodes, edges).topological_order
    except CycleError:
        return False
    new_id = {u: i for i, u in enumerate(order)}
    verifier = StreamingCCVerifier()
    missing = object()
    for u in order:
        op = comp.op(u)
        preds = [new_id[p] for p in comp.dag.predecessors(u)]
        if op.is_read:
            obs = constrained.get((op.loc, u), missing)
            if obs is missing:
                # Unconstrained read: feed as a no-op view (the
                # completion argument lets it observe a κ-maximal write).
                from repro.core.ops import N

                v = verifier.add_node(N, preds)
            else:
                v = verifier.add_node(
                    op, preds, None if obs is None else new_id[obs]
                )
        else:
            v = verifier.add_node(op, preds)
        if v is not None:
            return False
    return True
