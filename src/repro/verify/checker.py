"""Post-mortem verification of execution traces against memory models.

Section 1 of the paper motivates computations as "a means for post
mortem analysis, to verify whether a system meets a specification by
checking its behavior after it has finished executing".  This module is
that verifier.  A trace determines a *partial* observer function
(constrained at reads and writes); verification asks whether some total
observer function completing it belongs to the model.

* :func:`trace_admits_lc` — exact and polynomial.  The block-partition
  argument of :mod:`repro.models.membership` lifts to partial functions:
  group the constrained nodes of each location into fibers, build the
  quotient under *precedence* (paths may run through unconstrained
  nodes, so closure — not just direct edges — matters here), and check
  acyclicity with the ⊥ fiber in-edge-free.  Unconstrained nodes are
  always placeable: for the chosen block order, assign each the maximum
  of its predecessors' blocks; pairwise quotient edges guarantee this
  never exceeds a successor's block.
* :func:`lc_completion` — the certificate: a *total* observer function
  in LC completing the trace (built from per-location witness sorts).
* :func:`trace_admits_sc` — exact, worst-case exponential (the problem
  is NP-complete, Gibbons & Korach 1992): incremental construction of a
  single witnessing sort with failed-state memoization.
* :func:`find_completion` — generic bounded completion search for any
  model (used to check traces against dag-consistency models on small
  computations).
"""

from __future__ import annotations

import time
from typing import Iterator

from repro import obs
from repro.core.computation import Computation
from repro.core.last_writer import last_writer_row
from repro.core.observer import ObserverFunction, candidate_values
from repro.core.ops import Location
from repro.dag.digraph import bit_indices, bits
from repro.models.base import MemoryModel
from repro.runtime.trace import PartialObserver

__all__ = [
    "trace_admits_lc",
    "lc_trace_orders",
    "lc_completion",
    "trace_admits_sc",
    "find_completion",
]


def _constraints_with_writes(
    partial: PartialObserver, loc: Location
) -> dict[int, int | None]:
    """Constrained entries at ``loc``, plus the forced write self-entries."""
    comp = partial.comp
    row = partial.constrained(loc)
    for w in comp.writers(loc):
        row[w] = w
    return row


def _location_admissible(
    comp: Computation, constraints: dict[int, int | None]
) -> tuple[list[int | None], dict[int | None, int]] | None:
    """Partial-row block check at one location.

    Returns ``(block_order, fibers)`` — a valid linear order of blocks
    (⊥ first when present) and the fiber bitsets — or ``None`` when the
    constraints are unsatisfiable.
    """
    if not constraints:
        return [], {}
    # Fibers over constrained nodes only.
    fibers: dict[int | None, int] = {}
    for u, v in constraints.items():
        fibers[v] = fibers.get(v, 0) | (1 << u)
    # Precedence quotient over constrained nodes.
    adj: dict[int | None, set[int | None]] = {b: set() for b in fibers}
    constrained_mask = 0
    block_of: dict[int, int | None] = {}
    for u, v in constraints.items():
        constrained_mask |= 1 << u
        block_of[u] = v
    dag = comp.dag
    for u in constraints:
        bu = block_of[u]
        for v in bit_indices(dag.descendants_mask(u) & constrained_mask):
            bv = block_of[v]
            if bv != bu:
                adj[bu].add(bv)
    # ⊥ fiber must have no in-edges.
    if None in fibers:
        for b, outs in adj.items():
            if None in outs:
                return None
    # Topological order of blocks, ⊥ first.
    indeg = {b: 0 for b in fibers}
    for b, outs in adj.items():
        for c in outs:
            indeg[c] += 1
    order: list[int | None] = []
    if None in fibers:
        order.append(None)
        for c in adj[None]:
            indeg[c] -= 1
    frontier = [b for b in fibers if b is not None and indeg[b] == 0]
    while frontier:
        b = frontier.pop()
        order.append(b)
        for c in adj[b]:
            indeg[c] -= 1
            if indeg[c] == 0:
                frontier.append(c)
    if len(order) != len(fibers):
        return None  # quotient cycle
    return order, fibers


def trace_admits_lc(partial: PartialObserver) -> bool:
    """True iff some LC observer function completes the trace (polynomial)."""
    comp = partial.comp
    locs = set(partial.locations) | set(comp.locations)
    with obs.span("verify.lc", nodes=comp.num_nodes, locs=len(locs)) as sp:
        t0 = time.perf_counter()
        admitted = all(
            _location_admissible(comp, _constraints_with_writes(partial, loc))
            is not None
            for loc in locs
        )
        if sp is not None:
            sp.attrs["admitted"] = admitted
    if obs.enabled():
        obs.add("verify.lc.admitted" if admitted else "verify.lc.rejected")
        obs.observe("verify.lc.seconds", time.perf_counter() - t0)
    return admitted


def _witness_order_for_location(
    comp: Computation, constraints: dict[int, int | None]
) -> tuple[int, ...] | None:
    """A full topological sort whose last-writer row matches ``constraints``."""
    result = _location_admissible(comp, constraints)
    if result is None:
        return None
    block_order, fibers = result
    n = comp.num_nodes
    if not block_order:
        return comp.dag.topological_order
    ord_of_block = {b: i for i, b in enumerate(block_order)}
    # Assign every node a block index: constrained nodes keep theirs;
    # unconstrained nodes take the max of their predecessors' (0 if none).
    idx = [0] * n
    for u in comp.dag.topological_order:
        if u in constraints:
            idx[u] = ord_of_block[constraints[u]]
        else:
            preds = list(comp.dag.predecessors(u))
            idx[u] = max((idx[p] for p in preds), default=0)
    # Build T block by block.  Within a write's block, force the write
    # before every constrained observer (virtual edges; acyclic because
    # an observer never precedes its write — condition 2.2).
    order: list[int] = []
    for bi, b in enumerate(block_order):
        members = [u for u in range(n) if idx[u] == bi]
        member_set = set(members)
        extra_succ: dict[int, list[int]] = {}
        if b is not None and b in member_set:
            extra_succ[b] = [
                u for u in members if u != b and constraints.get(u, None) == b
            ]
        indeg = {
            u: sum(1 for p in comp.dag.predecessors(u) if p in member_set)
            for u in members
        }
        for u in extra_succ.get(b, []) if b is not None else []:
            indeg[u] += 1
        avail = sorted(u for u in members if indeg[u] == 0)
        placed_before = len(order)
        while avail:
            u = avail.pop(0)
            order.append(u)
            succs = [v for v in comp.dag.successors(u) if v in member_set]
            succs += extra_succ.get(u, [])
            for v in succs:
                indeg[v] -= 1
                if indeg[v] == 0:
                    avail.append(v)
        assert len(order) - placed_before == len(members), (
            "block subgraph with virtual write edges must stay acyclic"
        )
    assert len(order) == n
    return tuple(order)


def lc_completion(partial: PartialObserver) -> ObserverFunction | None:
    """A total LC observer function completing the trace, or ``None``.

    Built per location from the witness sort's last-writer row, so the
    result is in LC by construction; the function also asserts it indeed
    completes the input constraints.
    """
    comp = partial.comp
    locs = sorted(set(partial.locations) | set(comp.locations), key=repr)
    mapping: dict[Location, tuple[int | None, ...]] = {}
    for loc in locs:
        constraints = _constraints_with_writes(partial, loc)
        order = _witness_order_for_location(comp, constraints)
        if order is None:
            return None
        row = last_writer_row(comp, order, loc)
        for u, v in constraints.items():
            assert row[u] == v, "witness order must reproduce the constraints"
        mapping[loc] = row
    phi = ObserverFunction(comp, mapping, validate=True)
    assert partial.is_completion(phi)
    return phi


def trace_admits_sc(partial: PartialObserver) -> tuple[int, ...] | None:
    """A single witnessing sort explaining the whole trace, or ``None``.

    Exact decision of sequential consistency of the trace.  Runs the
    polynomial LC check first (SC ⊆ LC).  The search is the same
    incremental-construction scheme as
    :meth:`repro.models.sequential.SequentialConsistency.witness_order`,
    with constraints enforced only at constrained entries.
    """
    with obs.span("verify.sc", nodes=partial.comp.num_nodes) as sp:
        t0 = time.perf_counter()
        witness = _trace_admits_sc_body(partial)
        if sp is not None:
            sp.attrs["admitted"] = witness is not None
    if obs.enabled():
        obs.add(
            "verify.sc.admitted" if witness is not None else "verify.sc.rejected"
        )
        obs.observe("verify.sc.seconds", time.perf_counter() - t0)
    return witness


def _trace_admits_sc_body(partial: PartialObserver) -> tuple[int, ...] | None:
    if not trace_admits_lc(partial):
        return None
    comp = partial.comp
    n = comp.num_nodes
    locs = tuple(sorted(set(partial.locations) | set(comp.locations), key=repr))
    loc_index = {loc: i for i, loc in enumerate(locs)}
    cons: list[dict[int, int | None]] = [
        _constraints_with_writes(partial, loc) for loc in locs
    ]
    pred_mask = [comp.dag.predecessor_mask(u) for u in range(n)]
    write_at: list[int | None] = [None] * n
    for u in range(n):
        op = comp.op(u)
        if op.is_write:
            write_at[u] = loc_index[op.loc]
    full = (1 << n) - 1
    failed: set[tuple[int, tuple[int | None, ...]]] = set()
    order: list[int] = []

    def search(mask: int, lasts: tuple[int | None, ...]) -> bool:
        if mask == full:
            return True
        key = (mask, lasts)
        if key in failed:
            return False
        for u in range(n):
            if mask & (1 << u) or (pred_mask[u] & ~mask):
                continue
            ok = True
            for i in range(len(locs)):
                if write_at[u] == i:
                    continue
                want = cons[i].get(u, _FREE)
                if want is not _FREE and want != lasts[i]:
                    ok = False
                    break
            if not ok:
                continue
            wi = write_at[u]
            new_lasts = (
                lasts
                if wi is None
                else tuple(u if i == wi else lasts[i] for i in range(len(locs)))
            )
            order.append(u)
            if search(mask | (1 << u), new_lasts):
                return True
            order.pop()
        failed.add(key)
        return False

    if n == 0:
        return ()
    if search(0, (None,) * len(locs)):
        return tuple(order)
    return None


_FREE = object()
"""Sentinel distinguishing "unconstrained" from "constrained to ⊥"."""


def find_completion(
    model: MemoryModel,
    partial: PartialObserver,
    max_candidates: int = 200_000,
) -> ObserverFunction | None:
    """Search for *any* completion of the trace inside ``model``.

    Exhaustive over the free entries' candidate values with a budget
    guard (raises ``ValueError`` when the candidate space exceeds
    ``max_candidates``) — intended for small computations and for
    checking traces against models without a specialized verifier (the
    dag-consistency family).  LC traces short-circuit through
    :func:`lc_completion` when the model contains LC's completion.
    """
    comp = partial.comp
    locs = sorted(set(partial.locations) | set(comp.locations), key=repr)
    slots: list[tuple[Location, int, list[int | None]]] = []
    space = 1
    base: dict[Location, list[int | None]] = {}
    for loc in locs:
        constraints = _constraints_with_writes(partial, loc)
        row: list[int | None] = [None] * comp.num_nodes
        for u in comp.nodes():
            if u in constraints:
                row[u] = constraints[u]
            else:
                cands = candidate_values(comp, loc, u)
                slots.append((loc, u, cands))
                space *= len(cands)
        base[loc] = row
    if space > max_candidates:
        raise ValueError(
            f"completion space {space} exceeds budget {max_candidates}; "
            "use trace_admits_lc/trace_admits_sc or a smaller computation"
        )

    def assign(i: int) -> Iterator[None]:
        if i == len(slots):
            yield None
            return
        loc, u, cands = slots[i]
        for v in cands:
            base[loc][u] = v
            yield from assign(i + 1)

    for _ in assign(0):
        phi = ObserverFunction(
            comp,
            {loc: tuple(row) for loc, row in base.items()},
            validate=False,
        )
        if model.contains(comp, phi):
            return phi
    return None


_ = bits  # re-exported convenience kept for API stability


def lc_trace_orders(partial: PartialObserver) -> dict | None:
    """Per-location witness sorts for a trace, or ``None`` if not LC.

    The certificate companion of :func:`trace_admits_lc`: for each
    location a full topological sort ``T_l`` of the computation whose
    last-writer function agrees with every constrained entry — exactly
    Definition 18's existential, specialized to the trace's constraints.
    """
    comp = partial.comp
    locs = sorted(set(partial.locations) | set(comp.locations), key=repr)
    out: dict = {}
    for loc in locs:
        constraints = _constraints_with_writes(partial, loc)
        order = _witness_order_for_location(comp, constraints)
        if order is None:
            return None
        out[loc] = order
    return out
