"""Streaming (online) LC verification with fault localization.

The batch checker (:func:`repro.verify.trace_admits_lc`) answers
yes/no after the fact; this verifier consumes the execution as a stream
of events and reports the *first event* at which location consistency
became unsatisfiable — the question a runtime developer actually asks
("which read went wrong?").

It maintains, per location, the block structure of THEORY.md §1/§2
incrementally:

* every constrained event (a write, or a read with its observed writer)
  joins a *block* — the fiber of its observed write (or the ⊥ block);
* each node carries the set of blocks among its *constrained ancestors*
  per location (propagated along edges as nodes arrive — block-level
  reachability, bounded by the number of writes, not nodes);
* a new member of block ``b`` with a constrained ancestor in block
  ``a ≠ b`` adds the quotient edge ``a → b``; a cycle created by the
  insertion, or any edge into a ⊥ block, is precisely an LC violation
  (the streamed form of the batch condition), reported immediately with
  the offending node and location.

Cycle detection is the standard incremental scheme: on inserting
``a → b``, search from ``b`` for ``a`` in the quotient (whose size is
bounded by the writes to that location, not the trace length).

Agreement with the batch checker on complete traces is property-tested;
the bench measures the streaming cost per event on long executions.

Observability: :meth:`StreamingLCVerifier.check_trace` runs under a
``verify.streaming`` span, maintains ``verify.streaming.admitted`` /
``.rejected`` verdict counters, and samples its wall time into the
``verify.streaming.seconds`` histogram — mirroring the batch checker's
``verify.lc`` telemetry so the two are directly comparable in traces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

from repro import obs
from repro.core.ops import Op, Location
from repro.runtime.trace import ExecutionTrace

__all__ = ["StreamingViolation", "StreamingLCVerifier"]

_BOT = ("⊥",)  # per-location bottom-block sentinel (distinct from node ids)


def _blk(b: int | None) -> str:
    return "⊥" if b is None else f"write {b}"


def _render_reason(blocks: tuple[int | None, ...]) -> str:
    a, b = blocks
    if b is None:
        return (
            f"a node observing ⊥ follows a node in the block of {_blk(a)}"
        )
    return (
        f"write-serialization cycle between the blocks of "
        f"{_blk(a)} and {_blk(b)}"
    )


@dataclass(frozen=True)
class StreamingViolation:
    """The first event at which LC became unsatisfiable.

    ``blocks`` carries the violating quotient edge structurally: the
    block ids are *writer node ids* (``None`` is the ⊥ block), in the
    same id space as :attr:`node`.  Inside the event interface those are
    feed-order ids; :meth:`StreamingLCVerifier.check_trace` translates
    both ``node`` and ``blocks`` back to the trace's node ids and
    re-renders ``reason`` from the translated blocks, so witnesses
    handed to service clients name real trace nodes — never internal
    feed-order ids.
    """

    node: int
    loc: Location
    reason: str
    blocks: tuple[int | None, ...] = ()

    def translated(self, node: int, mapping) -> "StreamingViolation":
        """This violation with ids mapped through ``mapping`` (a sequence
        or callable over block/node ids); ⊥ blocks stay ⊥."""
        remap = mapping if callable(mapping) else mapping.__getitem__
        blocks = tuple(None if b is None else remap(b) for b in self.blocks)
        reason = _render_reason(blocks) if blocks else self.reason
        return StreamingViolation(node, self.loc, reason, blocks)


class StreamingLCVerifier:
    """Consume execution events; report the first LC violation.

    Events arrive via :meth:`add_node` in any topological order of the
    computation (execution order always qualifies).  Once a violation is
    reported the verifier latches it (subsequent adds keep returning it).
    """

    def __init__(self) -> None:
        #: per location: quotient adjacency over block ids.
        self._adj: dict[Location, dict[object, set[object]]] = {}
        #: per node: per location, frozenset of ancestor block ids.
        self._anc_blocks: list[dict[Location, frozenset]] = []
        #: per node: per location, its own block id (constrained only).
        self._own_block: list[dict[Location, object]] = []
        self.violation: StreamingViolation | None = None
        self.events = 0

    # ------------------------------------------------------------------
    # Quotient maintenance
    # ------------------------------------------------------------------

    def _reaches(self, loc: Location, src: object, dst: object) -> bool:
        adj = self._adj.get(loc, {})
        stack = [src]
        seen = {src}
        while stack:
            b = stack.pop()
            if b == dst:
                return True
            for c in adj.get(b, ()):
                if c not in seen:
                    seen.add(c)
                    stack.append(c)
        return False

    def _add_edge(
        self, node: int, loc: Location, a: object, b: object
    ) -> StreamingViolation | None:
        if a == b:
            return None
        if b == _BOT:
            # ``a`` is a write block: an edge ⊥ → ⊥ is a == b above, and
            # the source of a quotient edge is a constrained ancestor.
            blocks = (None if a == _BOT else a, None)
            return StreamingViolation(
                node, loc, _render_reason(blocks), blocks
            )
        adj = self._adj.setdefault(loc, {})
        if b in adj and self._reaches(loc, b, a):
            # Neither end is ⊥ here: edges into ⊥ are rejected above, so
            # ⊥ has no in-edges and can never close a cycle.
            blocks = (a, b)
            return StreamingViolation(
                node, loc, _render_reason(blocks), blocks
            )
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set())
        return None

    # ------------------------------------------------------------------
    # Event interface
    # ------------------------------------------------------------------

    def add_node(
        self,
        op: Op,
        preds: Iterable[int],
        observed: int | None = None,
    ) -> StreamingViolation | None:
        """Consume the next node; return the (first) violation, if any.

        ``observed`` is the writer id a read received (``None`` for ⊥);
        it is ignored for writes (condition 2.3 fixes their block) and
        for no-ops (unconstrained).
        """
        if self.violation is not None:
            return self.violation
        node = len(self._anc_blocks)
        self.events += 1
        preds = list(preds)
        # Ancestor blocks: union over predecessors, plus their own blocks.
        anc: dict[Location, set] = {}
        for p in preds:
            for loc, blocks in self._anc_blocks[p].items():
                anc.setdefault(loc, set()).update(blocks)
            for loc, b in self._own_block[p].items():
                anc.setdefault(loc, set()).add(b)

        own: dict[Location, object] = {}
        if op.is_write:
            own[op.loc] = node
        elif op.is_read:
            own[op.loc] = _BOT if observed is None else observed

        # New quotient edges: ancestor block -> own block, per location.
        for loc, b in own.items():
            for a in anc.get(loc, ()):
                v = self._add_edge(node, loc, a, b)
                if v is not None:
                    self.violation = v
                    break
            if self.violation is not None:
                break
            # Register the block even if isolated (for future edges).
            self._adj.setdefault(loc, {}).setdefault(b, set())

        self._anc_blocks.append(
            {loc: frozenset(s) for loc, s in anc.items()}
        )
        self._own_block.append(own)
        return self.violation

    @property
    def consistent_so_far(self) -> bool:
        """True iff no violation has been detected yet."""
        return self.violation is None

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    @classmethod
    def check_trace(
        cls, trace: ExecutionTrace
    ) -> StreamingViolation | None:
        """Stream a completed trace through a fresh verifier.

        Nodes are fed in execution order; the node-id mapping is
        preserved (the verifier's internal ids follow feed order, and
        execution order visits nodes in a topological order, so the
        reported node is translated back to the trace's node id).
        """
        comp = trace.comp
        observed = {e.node: e.observed for e in trace.reads}
        order = trace.schedule.execution_order()
        new_id = {u: i for i, u in enumerate(order)}
        verifier = cls()
        result: StreamingViolation | None = None
        with obs.span("verify.streaming", nodes=comp.num_nodes) as sp:
            t0 = time.perf_counter()
            for u in order:
                op = comp.op(u)
                preds = [new_id[p] for p in comp.dag.predecessors(u)]
                seen = observed.get(u)
                # Observed writers always executed before the read (a
                # memory can only return a value that exists), so their
                # feed ids are already assigned.
                seen_feed = None if seen is None else new_id[seen]
                v = verifier.add_node(op, preds, seen_feed)
                if v is not None:
                    # Translate the whole witness — the node *and* the
                    # violating blocks (feed-order ids) — back to trace
                    # node ids; ``translated`` re-renders the reason so
                    # no internal id survives into the message.
                    result = v.translated(u, order)
                    break
            if sp is not None:
                sp.attrs["admitted"] = result is None
                sp.attrs["events"] = verifier.events
        if obs.enabled():
            obs.add(
                "verify.streaming.admitted"
                if result is None
                else "verify.streaming.rejected"
            )
            obs.observe("verify.streaming.seconds", time.perf_counter() - t0)
        return result
