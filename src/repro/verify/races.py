"""Determinacy-race detection on computations.

A *determinacy race* is a pair of incomparable nodes accessing the same
location, at least one of them writing.  Races are exactly where weak
memory models earn their keep: on a race-free computation every
topological sort induces the *same* last-writer function at every
access, so all the models of this library collapse to a single allowed
behaviour (tested as a property in the suite); with races, the models
genuinely diverge.

Cilk's dag-consistency line of work (the paper's origin story) paired
the memory model with exactly this notion of race.  Two detectors live
in :mod:`repro.verify`:

* this module — the *exact* transitive-closure sweep, enumerating every
  racing pair from the dag's cached reachability bitsets.  It is the
  oracle the on-the-fly detector is verified against, so it is itself
  written on whole bitset rows (one pass to bucket accessors per
  location, then pure mask arithmetic per writer) and memoized through
  :mod:`repro._caching`;
* :mod:`repro.verify.spbags` — the near-linear SP-bags detector
  (Feng & Leiserson) for series-parallel computations, which needs no
  closure at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

from repro import _caching, kernels
from repro.core.computation import Computation
from repro.core.ops import Location
from repro.dag.digraph import bit_indices

__all__ = [
    "Race",
    "find_races",
    "find_races_naive",
    "is_race_free",
    "racy_locations",
]


@dataclass(frozen=True)
class Race:
    """One racing pair: ``u < v`` node ids, the location, and the kinds."""

    loc: Location
    u: int
    v: int
    kind: str  # "write-write" or "read-write"

    def __post_init__(self) -> None:
        assert self.u < self.v, "normalized order"


def find_races(comp: Computation) -> Iterator[Race]:
    """Yield every race, in (location-repr, writer, partner) order.

    For each location: a write races with any incomparable access, and
    two incomparable reads never race.  Implemented on whole bitset
    rows: one pass over the ops buckets accessors and writers per
    location into masks, then each writer's racing partners are a
    single mask expression against the cached closure rows —
    ``access & ~(ancestors | descendants)`` — with write-write pairs
    deduplicated by emitting them from the smaller node id only (no
    per-pair bookkeeping).  The enumeration order is identical to the
    historical per-pair sweep (:func:`find_races_naive`).

    Memoized on the computation via :mod:`repro._caching` — the race
    list is the oracle every on-the-fly analyzer is cross-checked
    against, and lock-aware lint classifies the same pairs again.
    """
    if _caching.ENABLED:
        return iter(_find_races_cached(comp))
    return iter(_find_races_impl(comp))


def _find_races_impl(comp: Computation) -> tuple[Race, ...]:
    dag = comp.dag
    access_mask: dict[Location, int] = {}
    write_mask: dict[Location, int] = {}
    for u, op in enumerate(comp.ops):
        loc = op.loc
        if loc is None:
            continue
        bit = 1 << u
        access_mask[loc] = access_mask.get(loc, 0) | bit
        if op.is_write:
            write_mask[loc] = write_mask.get(loc, 0) | bit
    # The per-writer mask sweep is a kernel: the backend receives one
    # (access, write) mask pair per location plus the closure rows and
    # returns the racing triples in the historical order (a write-write
    # pair is emitted from its smaller id only — the backend drops the
    # write partners below each writer, which dedupes without a
    # seen-set).
    locs = [loc for loc in comp.locations if write_mask.get(loc, 0)]
    loc_masks = [(access_mask[loc], write_mask[loc]) for loc in locs]
    desc, anc = dag._closure()
    races: list[Race] = []
    for li, w, other in kernels.race_pairs(comp.num_nodes, desc, anc, loc_masks):
        pair = (w, other) if w < other else (other, w)
        wmask = loc_masks[li][1]
        races.append(
            Race(
                locs[li],
                pair[0],
                pair[1],
                "write-write" if (wmask >> other) & 1 else "read-write",
            )
        )
    return tuple(races)


_find_races_cached = lru_cache(maxsize=1 << 12)(_find_races_impl)


def find_races_naive(comp: Computation) -> Iterator[Race]:
    """The historical per-pair closure sweep, retained as a baseline.

    Semantically identical to :func:`find_races` (the equivalence is
    property-tested) but pays an ``O(n)`` accessor scan per location
    and a seen-set membership test per candidate pair.  Benchmarks
    (``benchmarks/bench_races.py``) use it as the honest "closure
    sweep" the SP-bags detector is measured against; it is not
    memoized on purpose.
    """
    dag = comp.dag
    for loc in comp.locations:
        accessors = comp.accessors(loc)
        access_mask = 0
        for a in accessors:
            access_mask |= 1 << a
        write_mask = comp.writers_mask(loc)
        seen: set[tuple[int, int]] = set()
        for w in bit_indices(write_mask):
            comparable = (
                dag.ancestors_mask(w) | dag.descendants_mask(w) | (1 << w)
            )
            for other in bit_indices(access_mask & ~comparable):
                pair = (min(w, other), max(w, other))
                if pair in seen:
                    continue
                seen.add(pair)
                both_write = bool(write_mask & (1 << other))
                yield Race(
                    loc,
                    pair[0],
                    pair[1],
                    "write-write" if both_write else "read-write",
                )


def is_race_free(comp: Computation) -> bool:
    """True iff the computation has no determinacy race."""
    return next(find_races(comp), None) is None


def racy_locations(comp: Computation) -> list[Location]:
    """The sorted list of locations participating in at least one race."""
    locs = {race.loc for race in find_races(comp)}
    return sorted(locs, key=repr)
