"""Determinacy-race detection on computations.

A *determinacy race* is a pair of incomparable nodes accessing the same
location, at least one of them writing.  Races are exactly where weak
memory models earn their keep: on a race-free computation every
topological sort induces the *same* last-writer function at every
access, so all the models of this library collapse to a single allowed
behaviour (tested as a property in the suite); with races, the models
genuinely diverge.

Cilk's dag-consistency line of work (the paper's origin story) paired
the memory model with exactly this notion of race; the classic
detection algorithm is SP-bags, but with the whole computation in hand
a transitive-closure sweep is simpler and exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.computation import Computation
from repro.core.ops import Location
from repro.dag.digraph import bit_indices

__all__ = ["Race", "find_races", "is_race_free", "racy_locations"]


@dataclass(frozen=True)
class Race:
    """One racing pair: ``u < v`` node ids, the location, and the kinds."""

    loc: Location
    u: int
    v: int
    kind: str  # "write-write" or "read-write"

    def __post_init__(self) -> None:
        assert self.u < self.v, "normalized order"


def find_races(comp: Computation) -> Iterator[Race]:
    """Yield every race, in (location-repr, u, v) order.

    For each location: a write races with any incomparable access, and
    two incomparable reads never race.  Implemented with the cached
    closure bitsets — ``O(Σ_l writers(l) · accesses(l))`` bit operations.
    """
    dag = comp.dag
    for loc in comp.locations:
        accessors = comp.accessors(loc)
        access_mask = 0
        for a in accessors:
            access_mask |= 1 << a
        write_mask = comp.writers_mask(loc)
        seen: set[tuple[int, int]] = set()
        for w in bit_indices(write_mask):
            comparable = (
                dag.ancestors_mask(w) | dag.descendants_mask(w) | (1 << w)
            )
            for other in bit_indices(access_mask & ~comparable):
                pair = (min(w, other), max(w, other))
                if pair in seen:
                    continue
                seen.add(pair)
                both_write = bool(write_mask & (1 << other))
                yield Race(
                    loc,
                    pair[0],
                    pair[1],
                    "write-write" if both_write else "read-write",
                )


def is_race_free(comp: Computation) -> bool:
    """True iff the computation has no determinacy race."""
    return next(find_races(comp), None) is None


def racy_locations(comp: Computation) -> list[Location]:
    """The sorted list of locations participating in at least one race."""
    locs = {race.loc for race in find_races(comp)}
    return sorted(locs, key=repr)
