"""Global switch for the sweep memoization layer.

The enumeration sweeps lean on ``functools.lru_cache`` memoization of
pure hot paths (canonical forms, topological-sort sets, last-writer
rows, augmentations, membership verdicts).  All of those caches consult
:data:`ENABLED` so that benchmarks can measure the *uncached* baseline —
the code path as it stood before the parallel sweep engine existed —
without reverting the library.

This module is intentionally dependency-free: it sits below ``core``,
``dag`` and ``models`` in the import graph so every layer may consult it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["ENABLED", "caches_enabled", "set_caches_enabled", "sweep_caching"]

ENABLED: bool = True
"""Whether the sweep memoization layer is active (module-global)."""


def caches_enabled() -> bool:
    """Current state of the sweep memoization layer."""
    return ENABLED


def set_caches_enabled(enabled: bool) -> None:
    """Turn the sweep memoization layer on or off process-wide.

    Off means every memoized helper recomputes from scratch on each
    call (existing cache entries are retained but not consulted, so
    re-enabling restores prior hits).
    """
    global ENABLED
    ENABLED = bool(enabled)


@contextmanager
def sweep_caching(enabled: bool) -> Iterator[None]:
    """Context manager scoping :func:`set_caches_enabled`.

    ``with sweep_caching(False): ...`` runs its body on the uncached
    code paths — the honest baseline for speedup measurements.
    """
    previous = ENABLED
    set_caches_enabled(enabled)
    try:
        yield
    finally:
        set_caches_enabled(previous)
